"""The pool, the worker-count resolution rule, and ``parallel_map``.

See the package docstring for the contract.  Implementation notes:

* The pool is ``concurrent.futures.ProcessPoolExecutor`` over the
  ``fork`` start method where available (Linux): forked workers share
  the parent's imported modules, so startup is milliseconds, and the
  chunk payload is the only per-task pickle cost.  On platforms
  without ``fork`` the default start method is used; every task
  callable this repo ships to workers is a module-level function,
  bound method, or picklable callable class, so both paths work.
* Each worker process is stamped with ``REPRO_IN_WORKER=1`` by the
  pool initializer; :func:`resolve_workers` answers 0 inside one, so
  a parallel stage nested in another parallel stage (CV folds fitting
  forests, say) degrades to sequential instead of forking pools of
  pools.
* Determinism: chunks are submitted and gathered in item order, and
  chunk boundaries only affect *observability* (how many
  ``parallel.chunk`` events fire), never results — each item's result
  depends only on the item.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from ..obs import is_enabled, trace
from .obsmerge import export_obs_state, record_chunk

#: Environment variable giving the default pool size (0 = sequential).
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Set inside every pool worker; forces nested fan-out sequential.
IN_WORKER_ENV_VAR = "REPRO_IN_WORKER"

#: Default chunking: ~4 chunks per worker balances scheduling slack
#: against per-chunk pickle/IPC overhead.
DEFAULT_CHUNKS_PER_WORKER = 4

log = logging.getLogger("repro.parallel.executor")

T = TypeVar("T")
R = TypeVar("R")

#: Stack of entered :func:`executor` contexts (innermost last).
_ACTIVE: list["ParallelExecutor"] = []


def current_executor() -> "ParallelExecutor | None":
    """The innermost active :func:`executor` context, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an effective worker count.

    Order: explicit ``workers`` argument > active :func:`executor`
    context > ``REPRO_WORKERS`` environment variable > 0.  ``-1``
    means "all cores".  Inside a pool worker the answer is always 0.

    Raises:
        ValueError: on a negative count other than -1, or a
            non-integer ``REPRO_WORKERS`` value.
    """
    if os.environ.get(IN_WORKER_ENV_VAR):
        return 0
    if workers is None:
        active = current_executor()
        if active is not None:
            return active.workers
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
            ) from None
    if workers == -1:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(
            f"workers must be >= 0 or -1 (all cores), got {workers}"
        )
    return int(workers)


def can_pickle(obj: object) -> bool:
    """Whether ``obj`` survives a round through ``pickle.dumps``.

    Callers use this to fall back to the sequential path for task
    callables a pool cannot ship (lambdas, closures over live
    engines) instead of raising mid-phase.
    """
    try:
        pickle.dumps(obj)
    except Exception as exc:
        log.debug(
            "falling back to sequential: %r is not picklable (%s)",
            obj,
            type(exc).__name__,
        )
        return False
    return True


def _worker_init() -> None:
    """Pool initializer: mark the process as a worker."""
    os.environ[IN_WORKER_ENV_VAR] = "1"


def _run_chunk(
    fn: Callable[[T], R], chunk: list[T], capture_obs: bool
) -> tuple[list[R], float, dict | None]:
    """Execute one chunk inside a pool worker.

    Resets the worker's global obs state first (workers are reused
    across chunks, and forked workers inherit the parent's state), so
    the exported snapshot is exactly this chunk's delta.
    """
    state: dict | None = None
    if capture_obs:
        from ..obs import reset, set_enabled

        reset()
        set_enabled(True)
    t0 = time.perf_counter()
    results = [fn(item) for item in chunk]
    seconds = time.perf_counter() - t0
    if capture_obs:
        state = export_obs_state()
    return results, seconds, state


def _mp_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelExecutor:
    """A fixed worker count plus a lazily created, reusable pool.

    Constructed by :func:`executor`; ``parallel_map`` calls inside the
    context reuse one pool instead of forking a fresh one per stage.
    """

    def __init__(
        self, workers: int, chunk_size: int | None = None
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool: ProcessPoolExecutor | None = None

    def pool(self) -> ProcessPoolExecutor:
        """The pool, created on first use.

        Raises:
            ValueError: for a sequential (``workers<=1``) executor,
                which must never fork a pool.
        """
        if self.workers <= 1:
            raise ValueError(
                "a sequential executor (workers<=1) has no pool"
            )
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_mp_context(),
                initializer=_worker_init,
            )
        return self._pool

    @property
    def started(self) -> bool:
        """Whether the pool has actually been forked yet."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


@contextmanager
def executor(
    workers: int | None = None, chunk_size: int | None = None
) -> Iterator[ParallelExecutor]:
    """Pin a worker count (and one reusable pool) for a region.

    ``workers=None`` resolves from the ambient rule at entry (outer
    context, then ``REPRO_WORKERS``, then 0), so ``executor(0)``
    *forces* sequential execution for the region even when the
    environment asks for a pool.

    .. code-block:: python

        with executor(workers=4):
            forest.fit(X, y)        # fans trees out over one pool
            cross_validate(...)     # reuses the same pool
    """
    context = ParallelExecutor(
        resolve_workers(workers), chunk_size=chunk_size
    )
    _ACTIVE.append(context)
    try:
        yield context
    finally:
        _ACTIVE.pop()
        context.close()


def _chunked(items: list, chunk_size: int) -> list[list]:
    return [
        items[i : i + chunk_size]
        for i in range(0, len(items), chunk_size)
    ]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T] | Sequence[T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    label: str = "map",
) -> list[R]:
    """Ordered ``[fn(x) for x in items]``, optionally over a pool.

    With an effective worker count of 0 or 1 (see
    :func:`resolve_workers`) this **is** the list comprehension — no
    pool, no spans, no events — so sequential callers pay nothing and
    reproduce pre-parallel behavior exactly.  With ``workers>1``,
    items are chunked, executed on pool workers, and gathered in
    submission order; worker-side metric deltas and spans are merged
    into this process (:mod:`repro.parallel.obsmerge`).

    Args:
        fn: a picklable callable applied to one item at a time.
        items: the work items (materialized to a list).
        workers: explicit pool size; ``None`` defers to the ambient
            resolution rule.
        chunk_size: items per shipped chunk; default balances ~4
            chunks per worker.
        label: short name recorded on ``parallel.*`` spans/events so
            stages are tellable apart in reports.

    Raises:
        Exception: whatever ``fn`` raises, re-raised in the parent
            (the surrounding span records the error type).
    """
    items = list(items)
    resolved = resolve_workers(workers)
    if resolved <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    active = current_executor()
    if active is not None and active.workers == resolved:
        owned = None
        pool = active.pool()
        if chunk_size is None:
            chunk_size = active.chunk_size
    else:
        owned = ParallelExecutor(resolved)
        pool = owned.pool()
    if chunk_size is None:
        chunk_size = max(
            1,
            math.ceil(len(items) / (resolved * DEFAULT_CHUNKS_PER_WORKER)),
        )
    chunks = _chunked(items, chunk_size)
    capture_obs = is_enabled()
    results: list[R] = []
    try:
        with trace(
            "parallel.map",
            label=label,
            workers=resolved,
            chunks=len(chunks),
            items=len(items),
        ):
            futures: list[Future] = [
                pool.submit(_run_chunk, fn, chunk, capture_obs)
                for chunk in chunks
            ]
            for index, future in enumerate(futures):
                chunk_results, seconds, state = future.result()
                results.extend(chunk_results)
                record_chunk(
                    label, index, len(chunks[index]), seconds, state
                )
    finally:
        if owned is not None:
            owned.close()
    return results
