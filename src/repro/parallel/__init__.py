"""Deterministic process-pool execution layer.

The paper's pitch is *efficiency and scalability*, yet the three
hottest stages of the reproduction — fitting the 70-tree Random
Forest, 10-fold cross-validation, and the clustering passes of the
labeling pipeline — are embarrassingly parallel and ran on a single
core.  This package fans them out over a ``ProcessPoolExecutor``
without giving up the repo's determinism contract:

* :func:`parallel_map` — ordered map over picklable work items.  At
  ``workers=0`` (the default) it is **exactly** ``[fn(x) for x in
  items]``: no pool, no extra spans, bit-identical results.  With
  ``workers>1`` items are chunked, shipped to pool workers, and
  gathered **in submission order**, so any task whose result depends
  only on its item (never on execution order) produces output
  identical to the sequential run.
* :func:`executor` — a context manager that pins a worker count (and
  a reusable pool) for a region of code; ``parallel_map`` calls inside
  the region inherit it.
* :func:`resolve_workers` — the single resolution rule: explicit
  ``workers=`` kwarg > active :func:`executor` context > the
  ``REPRO_WORKERS`` environment variable > 0 (sequential).  Inside a
  pool worker the answer is always 0, so nested fan-out can never
  oversubscribe the machine.

Observability integrates via :mod:`repro.parallel.obsmerge`: each
chunk runs against the worker's own (reset) global registry/tracer,
and its metric deltas and spans are shipped back and merged into the
parent process, so ``RunReport`` reconciliation (capture counts,
label counters) holds regardless of the worker count.  The parent
records ``parallel.map`` spans, per-chunk ``parallel.chunk``
spans/events, and ``parallel.chunks`` / ``parallel.chunk_seconds``
metrics.
"""

from __future__ import annotations

from .executor import (
    DEFAULT_CHUNKS_PER_WORKER,
    WORKERS_ENV_VAR,
    ParallelExecutor,
    can_pickle,
    current_executor,
    executor,
    parallel_map,
    resolve_workers,
)
from .obsmerge import export_obs_state, merge_obs_state

__all__ = [
    "DEFAULT_CHUNKS_PER_WORKER",
    "ParallelExecutor",
    "WORKERS_ENV_VAR",
    "can_pickle",
    "current_executor",
    "executor",
    "export_obs_state",
    "merge_obs_state",
    "parallel_map",
    "resolve_workers",
]
