"""The 16 account-profile features (Section IV-A, "Account Profile").

Extracted from the profile snapshot embedded in tweet JSON, for both
the sender and — when the tweet mentions a pseudo-honeypot node — the
receiver.  Tweets without an applicable receiver get a zero block
(footnote 2: receiver features exist only for receivers we can single
out).
"""

from __future__ import annotations

import numpy as np

from ..twittersim.entities import UserProfile
from .textstats import count_digits, count_emoji

N_PROFILE_FEATURES = 16

#: Feature slots that depend on ``now`` (age and the per-day averages);
#: every other slot is a pure function of the profile fields.
AGE_DEPENDENT_SLOTS = (2, 4, 6, 7)

#: Character-class statistics are pure functions of the description
#: string, and descriptions repeat massively (one per account, embedded
#: in every tweet snapshot), so they memoize collision-free on the
#: string itself.  The cap only bounds pathological churn.
_DESC_STATS_CAP = 200_000
_desc_stats: dict[str, tuple[int, int]] = {}


def _description_stats(text: str) -> tuple[int, int]:
    stats = _desc_stats.get(text)
    if stats is None:
        if len(_desc_stats) >= _DESC_STATS_CAP:
            _desc_stats.clear()
        stats = (count_emoji(text), count_digits(text))
        _desc_stats[text] = stats
    return stats


def profile_features(profile: UserProfile, now: float) -> np.ndarray:
    """The 16 profile features of one account at time ``now``."""
    age = profile.age_days(now)
    n_emoji, n_digits = _description_stats(profile.description)
    return np.array(
        [
            float(profile.friends_count),
            float(profile.followers_count),
            age,
            float(profile.statuses_count),
            profile.statuses_count / age,
            float(profile.listed_count),
            profile.listed_count / age,
            profile.favourites_count / age,
            float(profile.favourites_count),
            float(profile.verified),
            float(profile.default_profile_image),
            float(len(profile.screen_name)),
            float(len(profile.name)),
            float(len(profile.description)),
            float(n_emoji),
            float(n_digits),
        ]
    )


def refresh_age_slots(
    vector: np.ndarray, profile: UserProfile, now: float
) -> np.ndarray:
    """Rewrite the ``now``-dependent slots of a cached feature vector.

    The expressions mirror :func:`profile_features` exactly, so a
    cached vector with refreshed age slots is bitwise-equal to a fresh
    extraction.
    """
    age = profile.age_days(now)
    vector[2] = age
    vector[4] = profile.statuses_count / age
    vector[6] = profile.listed_count / age
    vector[7] = profile.favourites_count / age
    return vector


def empty_profile_features() -> np.ndarray:
    """Zero block used when no receiver profile is available."""
    return np.zeros(N_PROFILE_FEATURES)
