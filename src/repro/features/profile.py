"""The 16 account-profile features (Section IV-A, "Account Profile").

Extracted from the profile snapshot embedded in tweet JSON, for both
the sender and — when the tweet mentions a pseudo-honeypot node — the
receiver.  Tweets without an applicable receiver get a zero block
(footnote 2: receiver features exist only for receivers we can single
out).
"""

from __future__ import annotations

import numpy as np

from ..twittersim.entities import UserProfile
from .textstats import count_digits, count_emoji

N_PROFILE_FEATURES = 16


def profile_features(profile: UserProfile, now: float) -> np.ndarray:
    """The 16 profile features of one account at time ``now``."""
    age = profile.age_days(now)
    return np.array(
        [
            float(profile.friends_count),
            float(profile.followers_count),
            age,
            float(profile.statuses_count),
            profile.statuses_count / age,
            float(profile.listed_count),
            profile.listed_count / age,
            profile.favourites_count / age,
            float(profile.favourites_count),
            float(profile.verified),
            float(profile.default_profile_image),
            float(len(profile.screen_name)),
            float(len(profile.name)),
            float(len(profile.description)),
            float(count_emoji(profile.description)),
            float(count_digits(profile.description)),
        ]
    )


def empty_profile_features() -> np.ndarray:
    """Zero block used when no receiver profile is available."""
    return np.zeros(N_PROFILE_FEATURES)
