"""Feature extraction: the paper's 58 tweet features (Section IV-A)."""

from .behavior import BehaviorTracker, UserActivity
from .content import content_features, normalize_text_for_dedup
from .environment import EnvironmentScoreTracker
from .extractor import NO_MENTION_TIME, FeatureExtractor
from .profile import empty_profile_features, profile_features
from .schema import (
    BEHAVIOR_FEATURE_NAMES,
    CONTENT_FEATURE_NAMES,
    FEATURE_GROUPS,
    FEATURE_NAMES,
    N_FEATURES,
    PROFILE_FEATURE_NAMES,
    feature_index,
)
from .textstats import count_digits, count_emoji, strip_for_shingling

__all__ = [
    "BEHAVIOR_FEATURE_NAMES",
    "BehaviorTracker",
    "CONTENT_FEATURE_NAMES",
    "EnvironmentScoreTracker",
    "FEATURE_GROUPS",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "N_FEATURES",
    "NO_MENTION_TIME",
    "PROFILE_FEATURE_NAMES",
    "UserActivity",
    "content_features",
    "count_digits",
    "count_emoji",
    "empty_profile_features",
    "feature_index",
    "normalize_text_for_dedup",
    "profile_features",
    "strip_for_shingling",
]
