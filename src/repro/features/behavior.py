"""Stateful behavioral trackers backing the 18 behavior features.

The behavioral features are defined over the *observed* stream: tweet
and source distributions of each sender/receiver, pairwise reciprocity
counts, and average inter-tweet intervals are all running statistics
over what the monitor has captured so far.  The extractor updates these
trackers tweet-by-tweet in timestamp order.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..twittersim.entities import Tweet, TweetKind, TweetSource

_KIND_SLOT = {
    TweetKind.TWEET: 0,
    TweetKind.RETWEET: 1,
    TweetKind.QUOTE: 2,
}

_SOURCE_SLOT = {
    TweetSource.WEB: 0,
    TweetSource.MOBILE: 1,
    TweetSource.THIRD_PARTY: 2,
    TweetSource.OTHER: 3,
}


@dataclass
class UserActivity:
    """Running per-user stream statistics."""

    kind_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(3, dtype=np.float64)
    )
    source_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(4, dtype=np.float64)
    )
    n_tweets: int = 0
    last_tweet_at: float | None = None
    total_interval: float = 0.0

    def kind_fractions(self) -> np.ndarray:
        """(tweet, retweet, quote) fractions; zeros before any tweet.

        Each :meth:`record` adds exactly one count, so ``n_tweets`` is
        the counts' sum — no per-call reduction needed (the int
        divisor converts to the identical float64).
        """
        total = self.n_tweets
        return self.kind_counts / total if total else self.kind_counts.copy()

    def source_fractions(self) -> np.ndarray:
        """(web, mobile, third-party, other) fractions."""
        total = self.n_tweets
        return (
            self.source_counts / total if total else self.source_counts.copy()
        )

    def average_interval(self) -> float:
        """Mean seconds between consecutive observed tweets (0 if < 2)."""
        n_gaps = self.n_tweets - 1
        return self.total_interval / n_gaps if n_gaps > 0 else 0.0

    def record(self, tweet: Tweet) -> None:
        """Fold one authored tweet into the statistics."""
        self.kind_counts[_KIND_SLOT[tweet.kind]] += 1
        self.source_counts[_SOURCE_SLOT[tweet.source]] += 1
        if self.last_tweet_at is not None:
            gap = tweet.created_at - self.last_tweet_at
            if gap > 0:
                self.total_interval += gap
        self.last_tweet_at = tweet.created_at
        self.n_tweets += 1


class BehaviorTracker:
    """Stream-wide behavioral state: per-user activity and reciprocity."""

    def __init__(self) -> None:
        self._activity: dict[int, UserActivity] = defaultdict(UserActivity)
        self._reciprocity: dict[tuple[int, int], int] = defaultdict(int)

    def activity(self, user_id: int) -> UserActivity:
        """Running statistics of one user (empty if never seen)."""
        return self._activity[user_id]

    def reciprocity(self, user_a: int, user_b: int) -> int:
        """Number of observed interactions between an unordered pair."""
        key = (user_a, user_b) if user_a <= user_b else (user_b, user_a)
        return self._reciprocity[key]

    def record(self, tweet: Tweet) -> None:
        """Fold one captured tweet into all behavioral statistics."""
        self._activity[tweet.user.user_id].record(tweet)
        for mention in tweet.mentions:
            a, b = tweet.user.user_id, mention.user_id
            key = (a, b) if a <= b else (b, a)
            self._reciprocity[key] += 1

    def __len__(self) -> int:
        return len(self._activity)
