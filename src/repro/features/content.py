"""The 8 tweet-content features (Section IV-A, "Tweet Contents")."""

from __future__ import annotations

import numpy as np

from ..twittersim.entities import Tweet, TweetKind, TweetSource
from .textstats import count_digits, count_emoji

N_CONTENT_FEATURES = 8

_KIND_CODE = {
    TweetKind.TWEET: 0.0,
    TweetKind.RETWEET: 1.0,
    TweetKind.QUOTE: 2.0,
}

_SOURCE_CODE = {
    TweetSource.WEB: 0.0,
    TweetSource.MOBILE: 1.0,
    TweetSource.THIRD_PARTY: 2.0,
    TweetSource.OTHER: 3.0,
}


def normalize_text_for_dedup(text: str) -> str:
    """Canonical form for the "is repeated" feature.

    Mentions and URLs are stripped so a campaign blasting the same
    slogan at different victims still counts as repeated content.
    """
    tokens = [
        token
        for token in text.lower().split()
        if not token.startswith("@") and not token.startswith("http")
    ]
    return " ".join(tokens)


def content_features(tweet: Tweet, repeated: bool) -> np.ndarray:
    """The 8 content features of one tweet.

    Args:
        tweet: the tweet record.
        repeated: whether this (normalized) text was seen before in the
            collection window — tracked by the extractor, which owns
            the dedup memory.
    """
    return np.array(
        [
            float(repeated),
            _KIND_CODE[tweet.kind],
            _SOURCE_CODE[tweet.source],
            float(len(tweet.hashtags)),
            float(len(tweet.mentions)),
            float(len(tweet.text)),
            float(count_emoji(tweet.text)),
            float(count_digits(tweet.text)),
        ]
    )
