"""The 58-feature extractor (Section IV-A).

``FeatureExtractor`` is stateful: behavioral features are running
statistics over the captured stream, the "is repeated" content feature
needs a dedup memory, receiver-profile features need a profile cache,
and the environment score needs the per-attribute group-likelihood
tracker.  Feed it captured tweets in timestamp order; each call
extracts the feature vector *from the past only* and then folds the
tweet into the state (no self-leakage).
"""

from __future__ import annotations

import numpy as np

from ..twittersim.entities import Tweet, UserProfile
from .behavior import BehaviorTracker
from .content import content_features, normalize_text_for_dedup
from .environment import EnvironmentScoreTracker
from .profile import empty_profile_features, profile_features
from .schema import N_FEATURES

#: Sentinel for "not a reaction to any post" in the mention-time slot.
NO_MENTION_TIME = -1.0


class FeatureExtractor:
    """Extracts the paper's 58 features from a captured tweet stream.

    Args:
        honeypot_ids: ids of current pseudo-honeypot nodes; a tweet's
            *receiver* is its first mentioned honeypot node, falling
            back to its first mention (footnote 2 of the paper).
        environment: shared group-likelihood tracker; a fresh one is
            created if omitted.
        dedup_window_s: how long a normalized text stays "seen" for the
            is-repeated feature (paper uses a 1-day window for content
            duplication checks).
    """

    def __init__(
        self,
        honeypot_ids: set[int] | None = None,
        environment: EnvironmentScoreTracker | None = None,
        dedup_window_s: float = 86_400.0,
    ) -> None:
        self.honeypot_ids = honeypot_ids or set()
        self.environment = environment or EnvironmentScoreTracker()
        self.dedup_window_s = dedup_window_s
        self.behavior = BehaviorTracker()
        self._profiles: dict[int, UserProfile] = {}
        self._text_last_seen: dict[str, float] = {}
        self._dedup_prune_at = 0.0

    # ------------------------------------------------------------------

    def register_profile(self, profile: UserProfile) -> None:
        """Seed the receiver-profile cache (e.g. with honeypot nodes)."""
        self._profiles[profile.user_id] = profile

    def set_honeypot_ids(self, honeypot_ids: set[int]) -> None:
        """Update current honeypot node ids (hourly switching)."""
        self.honeypot_ids = honeypot_ids

    def receiver_of(self, tweet: Tweet) -> int | None:
        """The receiver account id of a tweet, if any."""
        for mention in tweet.mentions:
            if mention.user_id in self.honeypot_ids:
                return mention.user_id
        return tweet.mentions[0].user_id if tweet.mentions else None

    # ------------------------------------------------------------------

    def extract(
        self, tweet: Tweet, attributes: tuple[str, ...] = ()
    ) -> np.ndarray:
        """Feature vector of one captured tweet, then update state.

        Args:
            tweet: the captured tweet.
            attributes: selection-attribute labels of the capturing
                pseudo-honeypot node (drives the environment score).

        Returns:
            float64 vector of length 58 in schema order.
        """
        now = tweet.created_at
        sender = tweet.user

        receiver_id = self.receiver_of(tweet)
        receiver_profile = (
            self._profiles.get(receiver_id) if receiver_id is not None else None
        )

        normalized = normalize_text_for_dedup(tweet.text)
        last_seen = self._text_last_seen.get(normalized)
        repeated = (
            last_seen is not None and now - last_seen <= self.dedup_window_s
        )

        sender_activity = self.behavior.activity(sender.user_id)
        receiver_activity = (
            self.behavior.activity(receiver_id)
            if receiver_id is not None
            else None
        )

        mention_time = tweet.mention_time()
        reciprocity = (
            self.behavior.reciprocity(sender.user_id, receiver_id)
            if receiver_id is not None
            else 0
        )

        vector = np.empty(N_FEATURES)
        vector[0:16] = profile_features(sender, now)
        vector[16:32] = (
            profile_features(receiver_profile, now)
            if receiver_profile is not None
            else empty_profile_features()
        )
        vector[32:40] = content_features(tweet, repeated)
        vector[40] = float(reciprocity)
        vector[41:44] = sender_activity.kind_fractions()
        vector[44:47] = (
            receiver_activity.kind_fractions()
            if receiver_activity is not None
            else 0.0
        )
        vector[47:51] = sender_activity.source_fractions()
        vector[51:55] = (
            receiver_activity.source_fractions()
            if receiver_activity is not None
            else 0.0
        )
        vector[55] = (
            mention_time if mention_time is not None else NO_MENTION_TIME
        )
        vector[56] = sender_activity.average_interval()
        vector[57] = self.environment.score(attributes)

        self._update(tweet, normalized, attributes)
        return vector

    def extract_batch(
        self,
        tweets: list[Tweet],
        attributes: list[tuple[str, ...]] | None = None,
    ) -> np.ndarray:
        """Extract a (n, 58) matrix from tweets in timestamp order.

        Raises:
            ValueError: if ``attributes`` is given with a length
                different from ``tweets``.
        """
        if attributes is not None and len(attributes) != len(tweets):
            raise ValueError("attributes must align with tweets")
        rows = np.empty((len(tweets), N_FEATURES))
        for i, tweet in enumerate(tweets):
            attrs = attributes[i] if attributes is not None else ()
            rows[i] = self.extract(tweet, attrs)
        return rows

    def notify_spam(
        self, tweet: Tweet, attributes: tuple[str, ...] = ()
    ) -> None:
        """Report a confirmed spam so group-likelihood scores update."""
        self.environment.record_spam(attributes)

    # ------------------------------------------------------------------

    def _update(
        self, tweet: Tweet, normalized: str, attributes: tuple[str, ...]
    ) -> None:
        self.behavior.record(tweet)
        self._profiles[tweet.user.user_id] = tweet.user
        self._text_last_seen[normalized] = tweet.created_at
        self.environment.record_capture(attributes)
        if tweet.created_at >= self._dedup_prune_at:
            self._prune_dedup(tweet.created_at)

    def _prune_dedup(self, now: float) -> None:
        horizon = now - self.dedup_window_s
        self._text_last_seen = {
            text: ts
            for text, ts in self._text_last_seen.items()
            if ts >= horizon
        }
        self._dedup_prune_at = now + self.dedup_window_s / 4
