"""The 58-feature extractor (Section IV-A).

``FeatureExtractor`` is stateful: behavioral features are running
statistics over the captured stream, the "is repeated" content feature
needs a dedup memory, receiver-profile features need a profile cache,
and the environment score needs the per-attribute group-likelihood
tracker.  Feed it captured tweets in timestamp order; each call
extracts the feature vector *from the past only* and then folds the
tweet into the state (no self-leakage).
"""

from __future__ import annotations

import numpy as np

from ..obs import get_registry
from ..service.cache import LRUCache
from ..twittersim.entities import Tweet, UserProfile
from .behavior import BehaviorTracker
from .content import (
    _KIND_CODE,
    _SOURCE_CODE,
    normalize_text_for_dedup,
)
from .textstats import count_digits, count_emoji
from .environment import EnvironmentScoreTracker
from .profile import (
    empty_profile_features,
    profile_features,
    refresh_age_slots,
)
from .schema import N_FEATURES

#: Sentinel for "not a reaction to any post" in the mention-time slot.
NO_MENTION_TIME = -1.0


class FeatureExtractor:
    """Extracts the paper's 58 features from a captured tweet stream.

    Args:
        honeypot_ids: ids of current pseudo-honeypot nodes; a tweet's
            *receiver* is its first mentioned honeypot node, falling
            back to its first mention (footnote 2 of the paper).
        environment: shared group-likelihood tracker; a fresh one is
            created if omitted.
        dedup_window_s: how long a normalized text stays "seen" for the
            is-repeated feature (paper uses a 1-day window for content
            duplication checks).
        profile_cache_cap: LRU entry cap for the profile-feature memo
            (None = :attr:`PROFILE_CACHE_CAP`); the service layer
            shrinks it in cache-thrash tests.
    """

    def __init__(
        self,
        honeypot_ids: set[int] | None = None,
        environment: EnvironmentScoreTracker | None = None,
        dedup_window_s: float = 86_400.0,
        profile_cache_cap: int | None = None,
    ) -> None:
        self.honeypot_ids = honeypot_ids or set()
        self.environment = environment or EnvironmentScoreTracker()
        self.dedup_window_s = dedup_window_s
        self.behavior = BehaviorTracker()
        self._profiles: dict[int, UserProfile] = {}
        self._text_last_seen: dict[str, float] = {}
        self._dedup_prune_at = 0.0
        # Profile-feature memo: 12 of the 16 slots are pure functions
        # of the (frozen, hashable) profile snapshot; the 4 age slots
        # are refreshed per extraction, keeping hits bitwise-identical
        # to a full recompute.  Snapshots repeat heavily — a receiver's
        # cached profile serves every mention until it posts again.
        # LRU eviction (vs the old clear-on-full dict) keeps the hot
        # working set resident under long always-on streams; eviction
        # policy can never change a feature value, only hit rates.
        self._pf_cache = LRUCache(
            profile_cache_cap
            if profile_cache_cap is not None
            else self.PROFILE_CACHE_CAP
        )
        # Text-derived values (normalized dedup form, emoji/digit
        # counts) are pure functions of the text, and campaign blasts
        # repeat texts heavily — memoize per distinct string.
        self._text_stats = LRUCache(self.TEXT_STATS_CAP)
        registry = get_registry()
        self._m_pf_hits = registry.counter("features.profile_cache.hits")
        self._m_pf_misses = registry.counter("features.profile_cache.misses")

    #: Entry cap for the per-extractor profile-feature memo.
    PROFILE_CACHE_CAP = 50_000

    #: Entry cap for the per-text statistics memo.
    TEXT_STATS_CAP = 200_000

    # ------------------------------------------------------------------

    def register_profile(self, profile: UserProfile) -> None:
        """Seed the receiver-profile cache (e.g. with honeypot nodes)."""
        self._profiles[profile.user_id] = profile

    def set_honeypot_ids(self, honeypot_ids: set[int]) -> None:
        """Update current honeypot node ids (hourly switching)."""
        self.honeypot_ids = honeypot_ids

    def receiver_of(self, tweet: Tweet) -> int | None:
        """The receiver account id of a tweet, if any."""
        for mention in tweet.mentions:
            if mention.user_id in self.honeypot_ids:
                return mention.user_id
        return tweet.mentions[0].user_id if tweet.mentions else None

    # ------------------------------------------------------------------

    def extract(
        self, tweet: Tweet, attributes: tuple[str, ...] = ()
    ) -> np.ndarray:
        """Feature vector of one captured tweet, then update state.

        Args:
            tweet: the captured tweet.
            attributes: selection-attribute labels of the capturing
                pseudo-honeypot node (drives the environment score).

        Returns:
            float64 vector of length 58 in schema order.
        """
        now = tweet.created_at
        sender = tweet.user

        receiver_id = self.receiver_of(tweet)
        receiver_profile = (
            self._profiles.get(receiver_id) if receiver_id is not None else None
        )

        text = tweet.text
        stats = self._text_stats.get(text)
        if stats is None:
            stats = (
                normalize_text_for_dedup(text),
                count_emoji(text),
                count_digits(text),
            )
            self._text_stats.put(text, stats)
        normalized, n_emoji, n_digits = stats
        last_seen = self._text_last_seen.get(normalized)
        repeated = (
            last_seen is not None and now - last_seen <= self.dedup_window_s
        )

        sender_activity = self.behavior.activity(sender.user_id)
        receiver_activity = (
            self.behavior.activity(receiver_id)
            if receiver_id is not None
            else None
        )

        mention_time = tweet.mention_time()
        reciprocity = (
            self.behavior.reciprocity(sender.user_id, receiver_id)
            if receiver_id is not None
            else 0
        )

        vector = np.empty(N_FEATURES)
        vector[0:16] = self._profile_features_cached(sender, now)
        vector[16:32] = (
            self._profile_features_cached(receiver_profile, now)
            if receiver_profile is not None
            else empty_profile_features()
        )
        # Content slots written directly (scalar stores into the
        # float64 row are bitwise-equal to routing them through
        # ``content_features``'s temporary array).
        vector[32] = repeated
        vector[33] = _KIND_CODE[tweet.kind]
        vector[34] = _SOURCE_CODE[tweet.source]
        vector[35] = len(tweet.hashtags)
        vector[36] = len(tweet.mentions)
        vector[37] = len(text)
        vector[38] = n_emoji
        vector[39] = n_digits
        vector[40] = float(reciprocity)
        # Fraction blocks divide straight into the row (``np.divide``
        # with ``out=`` is the same element-wise division, minus the
        # temporary each ``*_fractions()`` call would allocate).
        n_sender = sender_activity.n_tweets
        if n_sender:
            np.divide(
                sender_activity.kind_counts, n_sender, out=vector[41:44]
            )
            np.divide(
                sender_activity.source_counts, n_sender, out=vector[47:51]
            )
        else:
            vector[41:44] = sender_activity.kind_counts
            vector[47:51] = sender_activity.source_counts
        if receiver_activity is not None:
            n_receiver = receiver_activity.n_tweets
            if n_receiver:
                np.divide(
                    receiver_activity.kind_counts,
                    n_receiver,
                    out=vector[44:47],
                )
                np.divide(
                    receiver_activity.source_counts,
                    n_receiver,
                    out=vector[51:55],
                )
            else:
                vector[44:47] = receiver_activity.kind_counts
                vector[51:55] = receiver_activity.source_counts
        else:
            vector[44:47] = 0.0
            vector[51:55] = 0.0
        vector[55] = (
            mention_time if mention_time is not None else NO_MENTION_TIME
        )
        vector[56] = sender_activity.average_interval()
        vector[57] = self.environment.score(attributes)

        self._update(tweet, normalized, attributes)
        return vector

    def extract_batch(
        self,
        tweets: list[Tweet],
        attributes: list[tuple[str, ...]] | None = None,
    ) -> np.ndarray:
        """Extract a (n, 58) matrix from tweets in timestamp order.

        Raises:
            ValueError: if ``attributes`` is given with a length
                different from ``tweets``.
        """
        if attributes is not None and len(attributes) != len(tweets):
            raise ValueError("attributes must align with tweets")
        rows = np.empty((len(tweets), N_FEATURES))
        for i, tweet in enumerate(tweets):
            attrs = attributes[i] if attributes is not None else ()
            rows[i] = self.extract(tweet, attrs)
        return rows

    @property
    def profile_cache_hits(self) -> int:
        """Profile-feature memo hits since construction."""
        return self._pf_cache.hits

    @property
    def profile_cache_misses(self) -> int:
        """Profile-feature memo misses since construction."""
        return self._pf_cache.misses

    def _profile_features_cached(
        self, profile: UserProfile, now: float
    ) -> np.ndarray:
        """Per-account profile features with the age slots refreshed."""
        base = self._pf_cache.get(profile)
        if base is None:
            self._m_pf_misses.inc()
            fresh = profile_features(profile, now)
            self._pf_cache.put(profile, fresh)
            return fresh
        self._m_pf_hits.inc()
        return refresh_age_slots(base, profile, now)

    def notify_spam(
        self, tweet: Tweet, attributes: tuple[str, ...] = ()
    ) -> None:
        """Report a confirmed spam so group-likelihood scores update."""
        self.environment.record_spam(attributes)

    # ------------------------------------------------------------------

    def _update(
        self, tweet: Tweet, normalized: str, attributes: tuple[str, ...]
    ) -> None:
        self.behavior.record(tweet)
        self._profiles[tweet.user.user_id] = tweet.user
        self._text_last_seen[normalized] = tweet.created_at
        self.environment.record_capture(attributes)
        if tweet.created_at >= self._dedup_prune_at:
            self._prune_dedup(tweet.created_at)

    def _prune_dedup(self, now: float) -> None:
        horizon = now - self.dedup_window_s
        self._text_last_seen = {
            text: ts
            for text, ts in self._text_last_seen.items()
            if ts >= horizon
        }
        self._dedup_prune_at = now + self.dedup_window_s / 4
