"""Feature schema: names and layout of the 58-dimensional vector.

Section IV-A defines 58 features: 16 sender-profile, 16 receiver-
profile, 8 tweet-content, and 18 behavioral.  The vector layout here is
fixed and shared by the extractor, the detector, tests, and the
feature-ablation benchmarks.
"""

from __future__ import annotations

PROFILE_FEATURE_NAMES: tuple[str, ...] = (
    "friends_count",
    "followers_count",
    "age_days",
    "statuses_count",
    "avg_statuses_per_day",
    "listed_count",
    "avg_lists_per_day",
    "avg_favourites_per_day",
    "favourites_count",
    "verified",
    "default_profile_image",
    "screen_name_length",
    "name_length",
    "description_length",
    "description_emoji_count",
    "description_digit_count",
)

CONTENT_FEATURE_NAMES: tuple[str, ...] = (
    "is_repeated",
    "tweet_status",
    "tweet_source",
    "hashtag_count",
    "mention_count",
    "content_length",
    "content_emoji_count",
    "content_digit_count",
)

BEHAVIOR_FEATURE_NAMES: tuple[str, ...] = (
    "reciprocity_count",
    "sender_tweet_frac",
    "sender_retweet_frac",
    "sender_quote_frac",
    "receiver_tweet_frac",
    "receiver_retweet_frac",
    "receiver_quote_frac",
    "sender_source_web_frac",
    "sender_source_mobile_frac",
    "sender_source_third_party_frac",
    "sender_source_other_frac",
    "receiver_source_web_frac",
    "receiver_source_mobile_frac",
    "receiver_source_third_party_frac",
    "receiver_source_other_frac",
    "mention_time",
    "avg_tweet_interval",
    "environment_score",
)

FEATURE_NAMES: tuple[str, ...] = (
    tuple(f"sender_{name}" for name in PROFILE_FEATURE_NAMES)
    + tuple(f"receiver_{name}" for name in PROFILE_FEATURE_NAMES)
    + CONTENT_FEATURE_NAMES
    + BEHAVIOR_FEATURE_NAMES
)

N_FEATURES = len(FEATURE_NAMES)
assert N_FEATURES == 58, f"schema drifted: {N_FEATURES} features"

#: Index ranges of the four feature groups, for ablation studies.
FEATURE_GROUPS: dict[str, tuple[int, int]] = {
    "sender_profile": (0, 16),
    "receiver_profile": (16, 32),
    "content": (32, 40),
    "behavior": (40, 58),
}


def feature_index(name: str) -> int:
    """Position of a feature name in the vector.

    Raises:
        KeyError: if the name is not in the schema.
    """
    try:
        return FEATURE_NAMES.index(name)
    except ValueError:
        raise KeyError(f"unknown feature {name!r}") from None
