"""Environment score (Section IV-A).

Each pseudo-honeypot attribute i carries a *group likelihood score*
p_i — the running probability that attribute i attracts spam, i.e.
spams found under that attribute over tweets captured under it.  A
tweet's environment score is the maximum p_i over the attributes of
the node that captured it, or a small constant τ when no spam has yet
been seen under any of those attributes.  Scores update online as the
detector confirms new spam, closing the paper's reverse-engineering
feedback loop.
"""

from __future__ import annotations

from collections import defaultdict


class EnvironmentScoreTracker:
    """Running group-likelihood scores per selection attribute."""

    def __init__(self, tau: float = 0.01) -> None:
        if not 0 <= tau <= 1:
            raise ValueError("tau must be in [0, 1]")
        self.tau = tau
        self._tweets: dict[str, int] = defaultdict(int)
        self._spams: dict[str, int] = defaultdict(int)

    def record_capture(self, attributes: tuple[str, ...]) -> None:
        """Count one captured tweet under each capturing attribute."""
        for attribute in attributes:
            self._tweets[attribute] += 1

    def record_spam(self, attributes: tuple[str, ...]) -> None:
        """Count one confirmed spam under each capturing attribute."""
        for attribute in attributes:
            self._spams[attribute] += 1

    def likelihood(self, attribute: str) -> float | None:
        """p_i for one attribute, or None if no spam seen under it."""
        spams = self._spams.get(attribute, 0)
        if spams == 0:
            return None
        return spams / max(self._tweets.get(attribute, spams), spams)

    def score(self, attributes: tuple[str, ...]) -> float:
        """Environment score: max p_i over attributes, else τ."""
        scores = [
            p
            for p in (self.likelihood(a) for a in attributes)
            if p is not None
        ]
        return max(scores) if scores else self.tau

    def snapshot(self) -> dict[str, float]:
        """Current p_i for every attribute with at least one spam."""
        return {
            attribute: self._spams[attribute]
            / max(self._tweets.get(attribute, 1), 1)
            for attribute in self._spams
        }
