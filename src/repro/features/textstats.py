"""Character-class statistics over tweet texts and profile strings."""

from __future__ import annotations

import unicodedata

_ASCII_DIGITS = "0123456789"

#: Per-character emoji verdicts; the alphabet of any run is tiny, so
#: this stays a few dozen entries.
_emoji_cache: dict[str, bool] = {}


def count_digits(text: str) -> int:
    """Number of decimal digit characters."""
    if text.isascii():
        # For ASCII text ``ch.isdigit()`` is exactly membership in
        # 0-9, so ten C-level scans replace the per-character loop.
        n = 0
        for digit in _ASCII_DIGITS:
            n += text.count(digit)
        return n
    return sum(map(str.isdigit, text))


def is_emoji(ch: str) -> bool:
    """Heuristic emoji test: symbol/other characters above U+2600.

    Covers the emoji blocks (Misc Symbols, Dingbats, Supplemental
    Symbols, Emoticons) without an external emoji database.
    """
    cached = _emoji_cache.get(ch)
    if cached is None:
        cached = ord(ch) >= 0x2600 and unicodedata.category(ch) in (
            "So",
            "Sk",
            "Cn",
        )
        _emoji_cache[ch] = cached
    return cached


def count_emoji(text: str) -> int:
    """Number of emoji characters (variation selectors excluded)."""
    if text.isascii():
        # Every ASCII code point is below U+2600.
        return 0
    return sum(map(is_emoji, text))


def strip_for_shingling(text: str) -> str:
    """Normalize a text for MinHash: drop URLs, emoji, punctuation,
    and digit-only tokens, collapsing case/whitespace.

    Mirrors Section IV-B's preprocessing (remove URL, emoji, stop
    words, special characters).  Digit-only tokens are dropped because
    campaigns append counters/cache-busters to otherwise identical
    blasts — exactly the variation near-duplicate detection must see
    through.
    """
    tokens = []
    for token in text.lower().split():
        if token.startswith("http"):
            continue
        if token.isascii() and token.isalnum():
            # Plain-word fast path: nothing to strip (ASCII alnum
            # characters are never emoji or punctuation).
            cleaned = token
        else:
            cleaned = "".join(
                ch for ch in token if ch.isalnum() and not is_emoji(ch)
            )
        if cleaned and not cleaned.isdigit():
            tokens.append(cleaned)
    return " ".join(tokens)
