"""Character-class statistics over tweet texts and profile strings."""

from __future__ import annotations

import unicodedata


def count_digits(text: str) -> int:
    """Number of decimal digit characters."""
    return sum(ch.isdigit() for ch in text)


def is_emoji(ch: str) -> bool:
    """Heuristic emoji test: symbol/other characters above U+2600.

    Covers the emoji blocks (Misc Symbols, Dingbats, Supplemental
    Symbols, Emoticons) without an external emoji database.
    """
    code = ord(ch)
    if code < 0x2600:
        return False
    return unicodedata.category(ch) in ("So", "Sk", "Cn")


def count_emoji(text: str) -> int:
    """Number of emoji characters (variation selectors excluded)."""
    return sum(is_emoji(ch) for ch in text)


def strip_for_shingling(text: str) -> str:
    """Normalize a text for MinHash: drop URLs, emoji, punctuation,
    and digit-only tokens, collapsing case/whitespace.

    Mirrors Section IV-B's preprocessing (remove URL, emoji, stop
    words, special characters).  Digit-only tokens are dropped because
    campaigns append counters/cache-busters to otherwise identical
    blasts — exactly the variation near-duplicate detection must see
    through.
    """
    tokens = []
    for token in text.lower().split():
        if token.startswith("http"):
            continue
        cleaned = "".join(
            ch for ch in token if ch.isalnum() and not is_emoji(ch)
        )
        if cleaned and not cleaned.isdigit():
            tokens.append(cleaned)
    return " ".join(tokens)
