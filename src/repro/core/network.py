"""The pseudo-honeypot network: selection + streaming + hourly switching.

``PseudoHoneypotNetwork`` owns the hour loop of Section V-A: every hour
it re-selects the parasitic bodies per its plan (portability), updates
the streaming filter in place, lets the platform run, and accumulates
captures.  Node-hour exposure per attribute is tracked because PGE
normalizes by it (G_i * T_i).
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass, field

from ..obs import get_event_stream, get_registry, trace
from ..twittersim.api.streaming import FilteredStream, StreamingClient
from ..twittersim.engine import TwitterEngine
from .monitor import CapturedTweet, PseudoHoneypotMonitor
from .selection import AttributeSelector, HoneypotNode, SelectionPlan

log = logging.getLogger("repro.core.network")


@dataclass
class ExposureLedger:
    """Node-hours deployed per attribute key and per sample label."""

    by_attribute: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    by_sample: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    hours: int = 0

    def record_hour(self, nodes: list[HoneypotNode]) -> None:
        """Account one deployed hour of the given node set."""
        self.hours += 1
        for node in nodes:
            self.by_attribute[node.attribute_key] += 1
            self.by_sample[node.sample_label] += 1


class PseudoHoneypotNetwork:
    """Deploys and operates a pseudo-honeypot network on the platform.

    Args:
        engine: the platform to monitor.
        selector: attribute-based account screener.
        plan: the selection shopping list (e.g.
            ``SelectionPlan.full_paper_plan()`` for the 2,400-node
            network).
        switch_every_hours: portability period (paper: 1 hour).
    """

    def __init__(
        self,
        engine: TwitterEngine,
        selector: AttributeSelector,
        plan: SelectionPlan,
        switch_every_hours: int = 1,
    ) -> None:
        if switch_every_hours < 1:
            raise ValueError("switch_every_hours must be >= 1")
        self.engine = engine
        self.selector = selector
        self.plan = plan
        self.switch_every_hours = switch_every_hours
        self.monitor = PseudoHoneypotMonitor()
        self.exposure = ExposureLedger()
        self.current_nodes: list[HoneypotNode] = []
        self._stream: FilteredStream | None = None
        self._hours_since_switch = 0
        self._captures_at_hour_start = 0
        registry = get_registry()
        self._m_nodes_deployed = registry.counter("network.nodes_deployed")
        self._m_switches = registry.counter("network.switches")
        self._m_node_churn = registry.counter("network.node_churn")
        self._m_empty_hours = registry.counter("network.empty_capture_hours")
        self._m_fill_rate = registry.histogram("network.selector_fill_rate")
        self._events = get_event_stream()

    @property
    def deployed(self) -> bool:
        """Whether the streaming filter is currently open."""
        return self._stream is not None and self._stream.connected

    def deploy(self) -> list[HoneypotNode]:
        """Initial selection + stream connection; returns the node set.

        Raises:
            RuntimeError: if already deployed.
        """
        if self.deployed:
            raise RuntimeError("network is already deployed")
        with trace("network.deploy") as span:
            self.current_nodes = self.selector.select(
                self.plan, self.engine.clock.now
            )
            self.monitor.set_nodes(self.current_nodes, self.engine.clock.hour)
            client = StreamingClient(self.engine)
            self._stream = client.filter(
                [node.track_term for node in self.current_nodes],
                listener=self.monitor,
            )
            self._m_nodes_deployed.inc(len(self.current_nodes))
            self._record_selection(span)
            self._events.emit(
                "network.deploy",
                hour=self.engine.clock.hour,
                nodes_requested=self.plan.total_requested,
                nodes_selected=len(self.current_nodes),
                fill_rate=span.attributes.get("fill_rate", 1.0),
            )
        log.info(
            "deployed %d/%d pseudo-honeypot nodes at hour %d",
            len(self.current_nodes),
            self.plan.total_requested,
            self.engine.clock.hour,
        )
        return self.current_nodes

    def _record_selection(self, span) -> None:
        """Fill-rate accounting + shortfall anomaly of one selection."""
        requested = self.plan.total_requested
        selected = len(self.current_nodes)
        fill_rate = selected / requested if requested else 1.0
        self._m_fill_rate.observe(fill_rate)
        span.set(
            nodes_requested=requested,
            nodes_selected=selected,
            fill_rate=round(fill_rate, 4),
        )
        if selected < requested:
            report = self.selector.last_report
            shortfalls = getattr(report, "shortfalls", None) or {}
            worst = sorted(
                shortfalls.items(), key=lambda kv: -kv[1]
            )[:3]
            log.warning(
                "selector fell short of plan: %d/%d nodes at hour %d "
                "(worst shortfalls: %s)",
                selected,
                requested,
                self.engine.clock.hour,
                ", ".join(f"{k}={v}" for k, v in worst) or "n/a",
            )

    def prepare_hour(self) -> None:
        """Pre-hour bookkeeping: portability switch + exposure record.

        Split from :meth:`run_hour` so several networks can monitor the
        *same* platform hour (e.g. the Figure 6 advanced-vs-random
        comparison observes identical traffic): call ``prepare_hour``
        on every network, drive ``engine.run_hour()`` once, then call
        ``finish_hour`` on every network.

        Raises:
            RuntimeError: if the network was never deployed.
        """
        if not self.deployed:
            raise RuntimeError("deploy() the network before running")
        if self._hours_since_switch >= self.switch_every_hours:
            self._switch_nodes()
        self.exposure.record_hour(self.current_nodes)
        self._captures_at_hour_start = len(self.monitor.captured)

    def finish_hour(self) -> None:
        """Post-hour bookkeeping counterpart of :meth:`prepare_hour`."""
        self._hours_since_switch += 1
        if len(self.monitor.captured) == self._captures_at_hour_start:
            self._m_empty_hours.inc()
            log.warning(
                "empty capture hour %d: %d deployed nodes captured nothing",
                self.engine.clock.hour - 1,
                len(self.current_nodes),
            )

    def run_hour(self) -> None:
        """Advance the platform one hour under monitoring.

        Handles the portability switch: after ``switch_every_hours``
        monitored hours the node set is re-selected and the filter is
        updated in place (no reconnection).
        """
        self.prepare_hour()
        self.engine.run_hour()
        self.finish_hour()

    def run_hours(self, hours: int) -> None:
        """Run ``hours`` consecutive monitored hours."""
        for __ in range(hours):
            self.run_hour()

    def shutdown(self) -> None:
        """Disconnect the stream (idempotent)."""
        if self._stream is not None and self._stream.connected:
            self._stream.disconnect()
            self._events.emit(
                "network.shutdown",
                hours=self.exposure.hours,
                captures=len(self.monitor.captured),
            )
            log.info(
                "network shut down after %d monitored hours, %d captures",
                self.exposure.hours,
                len(self.monitor.captured),
            )

    @property
    def captured(self) -> list[CapturedTweet]:
        """All captures so far (not drained)."""
        return self.monitor.captured

    def _switch_nodes(self) -> None:
        with trace("network.switch") as span:
            previous = {node.user_id for node in self.current_nodes}
            self.current_nodes = self.selector.select(
                self.plan, self.engine.clock.now
            )
            self.monitor.set_nodes(self.current_nodes, self.engine.clock.hour)
            assert self._stream is not None
            self._stream.update_filter(
                [node.track_term for node in self.current_nodes]
            )
            self._hours_since_switch = 0
            churn = sum(
                1
                for node in self.current_nodes
                if node.user_id not in previous
            )
            self._m_switches.inc()
            self._m_node_churn.inc(churn)
            self._record_selection(span)
            span.set(node_churn=churn)
            self._events.emit(
                "network.switch",
                hour=self.engine.clock.hour,
                nodes_requested=self.plan.total_requested,
                nodes_selected=len(self.current_nodes),
                fill_rate=span.attributes.get("fill_rate", 1.0),
                node_churn=churn,
            )
