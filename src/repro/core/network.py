"""The pseudo-honeypot network: selection + streaming + hourly switching.

``PseudoHoneypotNetwork`` owns the hour loop of Section V-A: every hour
it re-selects the parasitic bodies per its plan (portability), updates
the streaming filter in place, lets the platform run, and accumulates
captures.  Node-hour exposure per attribute is tracked because PGE
normalizes by it (G_i * T_i).
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass, field

from ..faults import RetryPolicy
from ..obs import get_event_stream, get_registry, trace
from ..twittersim.api.rest import RestClient
from ..twittersim.api.streaming import FilteredStream, StreamingClient
from ..twittersim.engine import TwitterEngine
from ..twittersim.errors import TwitterSimError
from .garner import GarnerTelemetry
from .monitor import CapturedTweet, PseudoHoneypotMonitor
from .selection import AttributeSelector, HoneypotNode, SelectionPlan

log = logging.getLogger("repro.core.network")


@dataclass
class RecoveryLedger:
    """Degraded-mode accounting of one network's lifetime.

    Every quantity is exact, not sampled: ``lost`` is the number of
    matches the broken transport counted that no backfill recovered,
    so ``unique captures + lost`` reconciles with the ground-truth
    crossing count under any fault schedule.
    """

    #: Successful stream reconnects after a transport drop.
    reconnects: int = 0
    #: Reconnect attempts that exhausted their retry budget.
    failed_reconnects: int = 0
    #: Gap tweets recovered via REST search after reconnecting.
    backfilled: int = 0
    #: Undelivered matches no backfill recovered.
    lost: int = 0
    #: Portability switches postponed because the hour's selection or
    #: filter update kept failing.
    deferred_switches: int = 0

    @property
    def degraded(self) -> bool:
        """Whether any fault left a mark on this network."""
        return bool(
            self.reconnects
            or self.failed_reconnects
            or self.backfilled
            or self.lost
            or self.deferred_switches
        )


@dataclass
class ExposureLedger:
    """Node-hours deployed per attribute key and per sample label."""

    by_attribute: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    by_sample: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    hours: int = 0

    def record_hour(self, nodes: list[HoneypotNode]) -> None:
        """Account one deployed hour of the given node set."""
        self.hours += 1
        for node in nodes:
            self.by_attribute[node.attribute_key] += 1
            self.by_sample[node.sample_label] += 1


class PseudoHoneypotNetwork:
    """Deploys and operates a pseudo-honeypot network on the platform.

    Args:
        engine: the platform to monitor.
        selector: attribute-based account screener.
        plan: the selection shopping list (e.g.
            ``SelectionPlan.full_paper_plan()`` for the 2,400-node
            network).
        switch_every_hours: portability period (paper: 1 hour).
        retry_policy: governs retries around selection, stream
            create/update, and gap backfill; defaults to a
            :class:`repro.faults.RetryPolicy` seeded from the
            selector's seed.
    """

    def __init__(
        self,
        engine: TwitterEngine,
        selector: AttributeSelector,
        plan: SelectionPlan,
        switch_every_hours: int = 1,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if switch_every_hours < 1:
            raise ValueError("switch_every_hours must be >= 1")
        self.engine = engine
        self.selector = selector
        self.plan = plan
        self.switch_every_hours = switch_every_hours
        self.retry = retry_policy or RetryPolicy(
            seed=getattr(selector, "seed", 0)
        )
        self.monitor = PseudoHoneypotMonitor()
        self.exposure = ExposureLedger()
        self.recovery = RecoveryLedger()
        self.garner = GarnerTelemetry(self.exposure)
        self.current_nodes: list[HoneypotNode] = []
        self._client: StreamingClient | None = None
        self._rest: RestClient | None = None
        self._stream: FilteredStream | None = None
        self._hours_since_switch = 0
        self._captures_at_hour_start = 0
        registry = get_registry()
        self._m_nodes_deployed = registry.counter("network.nodes_deployed")
        self._m_switches = registry.counter("network.switches")
        self._m_node_churn = registry.counter("network.node_churn")
        self._m_empty_hours = registry.counter("network.empty_capture_hours")
        self._m_fill_rate = registry.histogram("network.selector_fill_rate")
        self._events = get_event_stream()

    @property
    def deployed(self) -> bool:
        """Whether the streaming filter is currently open."""
        return self._stream is not None and self._stream.connected

    def deploy(self) -> list[HoneypotNode]:
        """Initial selection + stream connection; returns the node set.

        Raises:
            RuntimeError: if already deployed.
        """
        if self._stream is not None and not self._stream.closed:
            raise RuntimeError("network is already deployed")
        with trace("network.deploy") as span:
            self.current_nodes = self.retry.call(
                "deploy.select",
                self.selector.select,
                self.plan,
                self.engine.clock.now,
            )
            self.monitor.set_nodes(self.current_nodes, self.engine.clock.hour)
            self._client = StreamingClient(self.engine)
            self._stream = self.retry.call(
                "deploy.filter",
                self._client.filter,
                [node.track_term for node in self.current_nodes],
                listener=self.monitor,
            )
            self._register_with_injector()
            self._m_nodes_deployed.inc(len(self.current_nodes))
            self._record_selection(span)
            self._events.emit(
                "network.deploy",
                hour=self.engine.clock.hour,
                nodes_requested=self.plan.total_requested,
                nodes_selected=len(self.current_nodes),
                fill_rate=span.attributes.get("fill_rate", 1.0),
            )
        log.info(
            "deployed %d/%d pseudo-honeypot nodes at hour %d",
            len(self.current_nodes),
            self.plan.total_requested,
            self.engine.clock.hour,
        )
        return self.current_nodes

    def _record_selection(self, span) -> None:
        """Fill-rate accounting + shortfall anomaly of one selection."""
        requested = self.plan.total_requested
        selected = len(self.current_nodes)
        fill_rate = selected / requested if requested else 1.0
        self._m_fill_rate.observe(fill_rate)
        span.set(
            nodes_requested=requested,
            nodes_selected=selected,
            fill_rate=round(fill_rate, 4),
        )
        if selected < requested:
            report = self.selector.last_report
            shortfalls = getattr(report, "shortfalls", None) or {}
            worst = sorted(
                shortfalls.items(), key=lambda kv: -kv[1]
            )[:3]
            log.warning(
                "selector fell short of plan: %d/%d nodes at hour %d "
                "(worst shortfalls: %s)",
                selected,
                requested,
                self.engine.clock.hour,
                ", ".join(f"{k}={v}" for k, v in worst) or "n/a",
            )

    def prepare_hour(self) -> None:
        """Pre-hour bookkeeping: portability switch + exposure record.

        Split from :meth:`run_hour` so several networks can monitor the
        *same* platform hour (e.g. the Figure 6 advanced-vs-random
        comparison observes identical traffic): call ``prepare_hour``
        on every network, drive ``engine.run_hour()`` once, then call
        ``finish_hour`` on every network.

        Raises:
            RuntimeError: if the network was never deployed (a broken
                stream is fine — it is recovered here).
        """
        if self._stream is None or self._stream.closed:
            raise RuntimeError("deploy() the network before running")
        if self._stream.broken:
            # A failed reconnect last hour: try again before the hour.
            self._recover_stream()
        if self._hours_since_switch >= self.switch_every_hours:
            if self._stream is not None and self._stream.broken:
                self._defer_switch("stream transport still down")
            else:
                self._switch_nodes()
        self.exposure.record_hour(self.current_nodes)
        self._captures_at_hour_start = len(self.monitor.captured)

    def finish_hour(self) -> None:
        """Post-hour bookkeeping counterpart of :meth:`prepare_hour`."""
        self._hours_since_switch += 1
        if self._stream is not None and self._stream.broken:
            self._recover_stream()
        if len(self.monitor.captured) == self._captures_at_hour_start:
            self._m_empty_hours.inc()
            log.warning(
                "empty capture hour %d: %d deployed nodes captured nothing",
                self.engine.clock.hour - 1,
                len(self.current_nodes),
            )
        # Live PGE estimate: fold the hour's captures into the garner
        # tallies and publish the per-band snapshot for this hour.
        self.garner.observe(self.monitor.captured)
        self._events.emit(
            "pge.snapshot",
            kind="live",
            hour=self.engine.clock.hour - 1,
            nodes=len(self.current_nodes),
            captures=self.garner.observed,
            bands=self.garner.band_snapshot(),
        )

    def run_hour(self) -> None:
        """Advance the platform one hour under monitoring.

        Handles the portability switch: after ``switch_every_hours``
        monitored hours the node set is re-selected and the filter is
        updated in place (no reconnection).
        """
        self.prepare_hour()
        self.engine.run_hour()
        self.finish_hour()

    def run_hours(self, hours: int) -> None:
        """Run ``hours`` consecutive monitored hours."""
        for __ in range(hours):
            self.run_hour()

    def shutdown(self) -> None:
        """Disconnect the stream (idempotent).

        A stream still broken at shutdown is drained first — its gap
        is backfilled without reconnecting — so the loss accounting
        stays exact to the last monitored hour.
        """
        stream = self._stream
        if stream is None or stream.closed:
            return
        if stream.broken:
            self._recover_stream(reconnect=False)
        else:
            stream.disconnect()
        # A shutdown-time drain can land captures (gap backfill) after
        # the last hourly snapshot: catch the tallies up so the final
        # garner state reconciles with the capture buffer exactly.
        self.garner.observe(self.monitor.captured)
        self._events.emit(
            "network.shutdown",
            hours=self.exposure.hours,
            captures=len(self.monitor.captured),
        )
        log.info(
            "network shut down after %d monitored hours, %d captures",
            self.exposure.hours,
            len(self.monitor.captured),
        )

    @property
    def captured(self) -> list[CapturedTweet]:
        """All captures so far (not drained)."""
        return self.monitor.captured

    def _switch_nodes(self) -> None:
        with trace("network.switch") as span:
            previous = {node.user_id for node in self.current_nodes}
            # Select and update the stream filter BEFORE committing the
            # node set: if either step fails past its retry budget the
            # whole switch is deferred, and tracked names never diverge
            # from the monitor's deployed nodes.
            try:
                nodes = self.retry.call(
                    "switch.select",
                    self.selector.select,
                    self.plan,
                    self.engine.clock.now,
                )
                assert self._stream is not None
                self.retry.call(
                    "switch.update_filter",
                    self._stream.update_filter,
                    [node.track_term for node in nodes],
                )
            except TwitterSimError as exc:
                self._defer_switch(f"{type(exc).__name__}: {exc}")
                span.set(deferred=True)
                return
            self.current_nodes = nodes
            self.monitor.set_nodes(self.current_nodes, self.engine.clock.hour)
            self._hours_since_switch = 0
            churn = sum(
                1
                for node in self.current_nodes
                if node.user_id not in previous
            )
            self._m_switches.inc()
            self._m_node_churn.inc(churn)
            self._record_selection(span)
            span.set(node_churn=churn)
            self._events.emit(
                "network.switch",
                hour=self.engine.clock.hour,
                nodes_requested=self.plan.total_requested,
                nodes_selected=len(self.current_nodes),
                fill_rate=span.attributes.get("fill_rate", 1.0),
                node_churn=churn,
            )

    # -- resilience --------------------------------------------------------

    def _defer_switch(self, reason: str) -> None:
        """Keep the current node set one more hour after a failed switch."""
        self.recovery.deferred_switches += 1
        # Stay due: retry the switch at the next prepare_hour.
        self._hours_since_switch = self.switch_every_hours
        get_registry().counter("network.switch_deferred").inc()
        self._events.emit(
            "network.switch_deferred",
            hour=self.engine.clock.hour,
            reason=reason,
        )
        log.warning(
            "portability switch deferred at hour %d (%s); keeping %d "
            "current nodes",
            self.engine.clock.hour,
            reason,
            len(self.current_nodes),
        )

    def _recover_stream(self, reconnect: bool = True) -> bool:
        """Reconnect a broken stream and reconcile its gap.

        Opens a replacement stream on the same filter, closes the
        broken one, and backfills the gap window ``[disconnected_at,
        now)`` over REST.  Matches the broken transport counted but no
        backfill recovered are accounted as ``lost`` — never silently
        dropped.  With ``reconnect=False`` (shutdown) the gap is
        reconciled without opening a replacement.

        Returns:
            False iff a reconnect was requested and failed; the broken
            stream then stays in counting mode for a later attempt.
        """
        stream = self._stream
        if stream is None or not stream.broken:
            return True
        with trace("network.recover") as span:
            replacement: FilteredStream | None = None
            if reconnect:
                assert self._client is not None
                try:
                    replacement = self.retry.call(
                        "recover.filter",
                        self._client.filter,
                        [node.track_term for node in self.current_nodes],
                        listener=self.monitor,
                    )
                except TwitterSimError as exc:
                    self.recovery.failed_reconnects += 1
                    get_registry().counter(
                        "stream.reconnect_failed"
                    ).inc()
                    self._events.emit(
                        "stream.reconnect_failed",
                        hour=self.engine.clock.hour,
                        error=type(exc).__name__,
                    )
                    span.set(reconnected=False)
                    log.warning(
                        "stream reconnect failed at hour %d (%s); "
                        "staying in counting mode",
                        self.engine.clock.hour,
                        exc,
                    )
                    return False
            undelivered = stream.undelivered_matches
            gap_start = stream.disconnected_at
            now = self.engine.clock.now
            stream.disconnect()
            self._stream = replacement
            backfilled = 0
            if undelivered and gap_start is not None:
                tweets = []
                try:
                    tweets = self.retry.call(
                        "recover.search",
                        self._rest_client().search_crossing,
                        [n.screen_name for n in self.current_nodes],
                        since=gap_start,
                        until=now,
                    )
                except TwitterSimError as exc:
                    log.warning(
                        "gap backfill search failed (%s); %d matches "
                        "written off as lost",
                        exc,
                        undelivered,
                    )
                backfilled = self.monitor.backfill(tweets)
            lost = max(0, undelivered - backfilled)
            registry = get_registry()
            if reconnect:
                self.recovery.reconnects += 1
                registry.counter("stream.reconnect").inc()
            self.recovery.backfilled += backfilled
            self.recovery.lost += lost
            if lost:
                registry.counter("capture.lost").inc(lost)
            span.set(
                undelivered=undelivered,
                backfilled=backfilled,
                lost=lost,
                reconnected=replacement is not None,
            )
            self._events.emit(
                "stream.reconnect",
                hour=self.engine.clock.hour,
                gap_start=round(gap_start or 0.0, 3),
                undelivered=undelivered,
                backfilled=backfilled,
                lost=lost,
                reconnected=replacement is not None,
            )
            log.info(
                "stream recovered at hour %d: %d undelivered, "
                "%d backfilled, %d lost",
                self.engine.clock.hour,
                undelivered,
                backfilled,
                lost,
            )
        return True

    def _register_with_injector(self) -> None:
        """Expose the live node ids to an installed fault injector."""
        injector = self.engine.fault_injector
        if injector is not None:
            injector.node_ids_provider = lambda: [
                node.user_id for node in self.current_nodes
            ]

    def _rest_client(self) -> RestClient:
        # Created lazily: fault-free runs never construct it, so their
        # RNG/obs footprint stays byte-identical to before.
        if self._rest is None:
            self._rest = RestClient(self.engine)
        return self._rest
