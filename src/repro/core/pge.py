"""Pseudo-honeypot Garner Efficiency (Section V-E).

``PGE_i = N_i / (G_i · T_i)`` — spammers garnered per pseudo-honeypot
node per hour under attribute i.  The exposure ledger supplies the
node-hours denominator G_i·T_i directly.  The module also refines the
top-k sampling attributes into the *advanced* pseudo-honeypot plan
(Table VI → the 100-node system of Figure 6 / Table VII).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from .attributes import PROFILE_ATTRIBUTE_BY_KEY, category_of_key
from .detector import ClassificationOutcome
from .network import ExposureLedger
from .selection import CategoryTarget, ProfileTarget, SelectionPlan


@dataclass
class AttributeStats:
    """Capture statistics under one attribute (or sampling bin)."""

    label: str
    tweets: int = 0
    spams: int = 0
    spammer_ids: set[int] = field(default_factory=set)
    user_ids: set[int] = field(default_factory=set)

    @property
    def spammers(self) -> int:
        return len(self.spammer_ids)

    @property
    def users(self) -> int:
        return len(self.user_ids)

    def spam_ratio(self) -> float:
        """Spams over captured tweets (Figure 5's solid line)."""
        return self.spams / self.tweets if self.tweets else 0.0

    def spammer_ratio(self) -> float:
        """Spammers over involved users (Figure 4's solid line)."""
        return self.spammers / self.users if self.user_ids else 0.0


def aggregate(
    outcome: ClassificationOutcome, by_sample: bool = False
) -> dict[str, AttributeStats]:
    """Group a classification outcome by attribute key or sample label.

    A capture that crossed nodes of several attributes counts under
    each (the paper's per-attribute figures do the same: one tweet can
    satisfy multiple criteria).
    """
    stats: dict[str, AttributeStats] = {}
    for capture, spam in zip(outcome.captures, outcome.is_spam):
        labels = capture.sample_labels if by_sample else capture.attribute_keys
        for label in labels:
            entry = stats.get(label)
            if entry is None:
                entry = stats[label] = AttributeStats(label)
            entry.tweets += 1
            entry.user_ids.add(capture.sender_id)
            if spam:
                entry.spams += 1
                entry.spammer_ids.add(capture.sender_id)
    return stats


@dataclass(frozen=True)
class PgeEntry:
    """One Table-VI row: a sampling attribute and its PGE."""

    label: str
    spammers: int
    node_hours: int
    pge: float


def pge_ranking(
    stats: dict[str, AttributeStats],
    exposure: dict[str, int],
) -> list[PgeEntry]:
    """Rank attributes by PGE = spammers / node-hours, descending.

    Attributes with zero recorded exposure are skipped (no nodes were
    ever deployed under them, so PGE is undefined).
    """
    entries = []
    for label, stat in stats.items():
        node_hours = exposure.get(label, 0)
        if node_hours <= 0:
            continue
        entries.append(
            PgeEntry(
                label=label,
                spammers=stat.spammers,
                node_hours=node_hours,
                pge=stat.spammers / node_hours,
            )
        )
    entries.sort(key=lambda e: (-e.pge, e.label))
    return entries


def ranking_payload(entries: list[PgeEntry]) -> list[dict]:
    """A PGE ranking as plain dict rows (the final ``pge.snapshot``).

    The live hourly snapshots rate bands by distinct users per
    node-hour; the final event carries *this* payload instead, so it
    reconciles bit-for-bit with the Table VI ranking.
    """
    return [
        {
            "band": entry.label,
            "spammers": entry.spammers,
            "node_hours": entry.node_hours,
            "pge": entry.pge,
        }
        for entry in entries
    ]


def pge_by_sample(
    outcome: ClassificationOutcome, exposure: ExposureLedger
) -> list[PgeEntry]:
    """Table VI: PGE ranking at sampling-bin granularity."""
    return pge_ranking(aggregate(outcome, by_sample=True), exposure.by_sample)


def pge_by_attribute(
    outcome: ClassificationOutcome, exposure: ExposureLedger
) -> list[PgeEntry]:
    """PGE ranking at whole-attribute granularity."""
    return pge_ranking(
        aggregate(outcome, by_sample=False), exposure.by_attribute
    )


def overall_pge(n_spammers: int, n_nodes: int, hours: int) -> float:
    """System-level PGE (Table VII rows).

    Raises:
        ValueError: on non-positive nodes or hours.
    """
    if n_nodes <= 0 or hours <= 0:
        raise ValueError("nodes and hours must be positive")
    return n_spammers / (n_nodes * hours)


def parse_sample_label(label: str) -> tuple[str, float | None]:
    """Split a sample label into (attribute_key, value-or-None)."""
    if "=" in label:
        key, __, raw = label.partition("=")
        return key, float(raw)
    return label, None


def advanced_plan_from_pge(
    entries: list[PgeEntry], top_k: int = 10, per_value: int = 10
) -> SelectionPlan:
    """Build the advanced pseudo-honeypot plan from a PGE ranking.

    Takes the ``top_k`` sampling attributes and requests ``per_value``
    accounts for each — the paper's 100-node advanced system.

    Raises:
        ValueError: if fewer than ``top_k`` ranked entries exist.
    """
    if len(entries) < top_k:
        raise ValueError(
            f"need {top_k} ranked attributes, have {len(entries)}"
        )
    profile_targets: list[ProfileTarget] = []
    category_targets: list[CategoryTarget] = []
    for entry in entries[:top_k]:
        key, value = parse_sample_label(entry.label)
        if value is not None:
            spec = PROFILE_ATTRIBUTE_BY_KEY[key]
            profile_targets.append(ProfileTarget(spec, value, per_value))
        else:
            category_of_key(key)  # validates the key
            category_targets.append(CategoryTarget(key, per_value))
    return SelectionPlan(tuple(profile_targets), tuple(category_targets))


def spam_count_distribution(
    outcome: ClassificationOutcome,
) -> dict[int, float]:
    """Figure 2: fraction of spammers vs. number of spam messages.

    Returns a mapping {spam_count: fraction_of_spammers} over all
    accounts the detector flagged at least once.
    """
    per_spammer: dict[int, int] = defaultdict(int)
    for capture, spam in zip(outcome.captures, outcome.is_spam):
        if spam:
            per_spammer[capture.sender_id] += 1
    if not per_spammer:
        return {}
    counts = np.array(list(per_spammer.values()))
    total = len(counts)
    distribution: dict[int, float] = {}
    for value in sorted(set(counts.tolist())):
        distribution[int(value)] = float(np.sum(counts == value)) / total
    return distribution
