"""Pseudo-honeypot monitoring (Section III-E).

The monitor is the stream listener behind the network's filtered
stream.  For every matched tweet it records which honeypot nodes were
crossed and under which selection attributes, and assigns the paper's
capture category:

* **OWN_POST** (category 1) — the parasitic account's own activity;
* **MENTION** (categories 2/3) — another account mentioning a node;
  whether it is a benign mention (2) or spam (3) is exactly what the
  detector decides later.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..obs import get_event_stream, get_registry
from ..twittersim.entities import Tweet
from .selection import HoneypotNode


class CaptureCategory(enum.Enum):
    """Capture categories of Section III-E."""

    OWN_POST = "own_post"
    MENTION = "mention"


@dataclass(frozen=True, slots=True)
class CapturedTweet:
    """One monitored tweet with its capture context."""

    tweet: Tweet
    hour: int
    capture_category: CaptureCategory
    #: Attribute keys of every honeypot node this tweet crossed.
    attribute_keys: tuple[str, ...]
    #: Sampling-bin labels of those nodes (Table VI granularity).
    sample_labels: tuple[str, ...]
    #: User ids of the crossed nodes.
    node_user_ids: tuple[int, ...]
    #: Recovered via REST after a stream gap, not seen live.
    backfilled: bool = False

    @property
    def sender_id(self) -> int:
        """Author of the captured tweet."""
        return self.tweet.user.user_id


class PseudoHoneypotMonitor:
    """Stream listener that tags matches with their capture context."""

    def __init__(self) -> None:
        self._nodes_by_name: dict[str, HoneypotNode] = {}
        self._hour = 0
        self.captured: list[CapturedTweet] = []
        #: Tweet ids ever examined — dedups faulty redelivery and
        #: keeps a reconnect backfill from double-counting tweets the
        #: stream already delivered live.
        self._seen_ids: set[int] = set()
        registry = get_registry()
        self._m_captures = registry.counter("network.captures")
        self._m_drops = registry.counter("network.drops")
        self._m_by_category = {
            category: registry.counter(f"network.captures.{category.value}")
            for category in CaptureCategory
        }
        self._events = get_event_stream()

    @property
    def node_ids(self) -> set[int]:
        """User ids of the currently deployed nodes."""
        return {node.user_id for node in self._nodes_by_name.values()}

    def set_nodes(self, nodes: list[HoneypotNode], hour: int) -> None:
        """Install the hour's node set (called at each switch)."""
        self._nodes_by_name = {node.screen_name: node for node in nodes}
        self._hour = hour

    def on_tweet(self, tweet: Tweet) -> None:
        """Record a matched tweet with its crossing nodes.

        Idempotent per tweet id: a redelivered tweet (duplicate fault,
        or live delivery followed by a backfill of the same window) is
        dropped, so capture counts never double-count.
        """
        if tweet.tweet_id in self._seen_ids:
            # Lazily registered: fault-free runs never see a
            # duplicate, keeping their metrics snapshot unchanged.
            get_registry().counter("capture.duplicate_dropped").inc()
            return
        self._seen_ids.add(tweet.tweet_id)
        self._capture(tweet, backfilled=False)

    def backfill(self, tweets: list[Tweet]) -> int:
        """Ingest gap-recovery tweets fetched over REST.

        Tweets the stream already delivered live are skipped; the
        rest are captured with ``backfilled=True``.  Returns how many
        were newly captured (crossing a deployed node).
        """
        recovered = 0
        for tweet in tweets:
            if tweet.tweet_id in self._seen_ids:
                continue
            self._seen_ids.add(tweet.tweet_id)
            if self._capture(tweet, backfilled=True):
                recovered += 1
        if recovered:
            get_registry().counter("capture.gap_backfilled").inc(
                recovered
            )
        return recovered

    def _capture(self, tweet: Tweet, backfilled: bool) -> bool:
        crossed: list[HoneypotNode] = []
        author_node = self._nodes_by_name.get(tweet.user.screen_name)
        if author_node is not None:
            crossed.append(author_node)
        for mention in tweet.mentions:
            node = self._nodes_by_name.get(mention.screen_name)
            if node is not None and node is not author_node:
                crossed.append(node)
        if not crossed:
            # Matched by the stream filter but no longer crossing a
            # deployed node (e.g. delivered just after a switch).
            self._m_drops.inc()
            return False
        category = (
            CaptureCategory.OWN_POST
            if author_node is not None
            else CaptureCategory.MENTION
        )
        self.captured.append(
            CapturedTweet(
                tweet=tweet,
                hour=self._hour,
                capture_category=category,
                attribute_keys=tuple(
                    dict.fromkeys(n.attribute_key for n in crossed)
                ),
                sample_labels=tuple(
                    dict.fromkeys(n.sample_label for n in crossed)
                ),
                node_user_ids=tuple(n.user_id for n in crossed),
                backfilled=backfilled,
            )
        )
        self._m_captures.inc()
        self._m_by_category[category].inc()
        if backfilled:
            self._events.emit(
                "network.capture",
                hour=self._hour,
                category=category.value,
                n_nodes_crossed=len(crossed),
                backfilled=True,
            )
        else:
            self._events.emit(
                "network.capture",
                hour=self._hour,
                category=category.value,
                n_nodes_crossed=len(crossed),
            )
        return True

    def drain(self) -> list[CapturedTweet]:
        """Return and clear the capture buffer."""
        captured = self.captured
        self.captured = []
        return captured
