"""Active/Dormant account status (Section III-D).

A pseudo-honeypot node only earns its keep while its parasitic body is
*Active* — posting recently and drawing mentions.  Dormant accounts are
dropped at the next hourly switch.  The policy reads only public data:
the account's recent timeline through the REST API, or its last-post
time already observed in the sample stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..twittersim.api.rest import RestClient
from ..twittersim.clock import SECONDS_PER_HOUR
from ..twittersim.errors import TwitterSimError


@dataclass(frozen=True)
class ActivityPolicy:
    """Defines *Active*: posted within the last ``window_hours``.

    Attributes:
        window_hours: recency horizon for the last post.
    """

    window_hours: float = 24.0

    def is_active_from_history(
        self, last_post_at: float | None, now: float
    ) -> bool:
        """Active test from an already-observed last-post timestamp."""
        if last_post_at is None:
            return False
        return now - last_post_at <= self.window_hours * SECONDS_PER_HOUR

    def is_active(self, rest: RestClient, user_id: int, now: float) -> bool:
        """Active test via a REST timeline read (Dormant on any error)."""
        try:
            timeline = rest.user_timeline(user_id)
        except TwitterSimError:
            return False
        if not timeline:
            return False
        return self.is_active_from_history(timeline[-1].created_at, now)
