"""Attribute-based pseudo-honeypot node selection (Sections III-B/C).

The selector screens live accounts against the Table I/II criteria and
returns the hour's parasitic bodies.  Everything it reads comes through
the public REST surface: a candidate sample, batch profile lookups, a
recent-tweet sample (indexed locally into hashtag/topic -> author maps),
and the trending classification.  Per Section III-D, only *Active*
accounts are eligible (see :mod:`repro.core.portability`).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

from ..twittersim.api.rest import RestClient
from ..twittersim.clock import SECONDS_PER_DAY
from ..twittersim.entities import Tweet, UserProfile
from ..twittersim.hashtags import HASHTAG_POOLS
from .attributes import (
    AttributeCategory,
    AttributeSpec,
    HASHTAG_ATTRIBUTE_KEYS,
    PROFILE_ATTRIBUTES,
    TRENDING_ATTRIBUTE_KEYS,
    category_of_key,
    hashtag_category_of_key,
)
from .portability import ActivityPolicy


@dataclass(frozen=True)
class HoneypotNode:
    """One selected parasitic body for the current hour."""

    user_id: int
    screen_name: str
    attribute_key: str
    sample_label: str
    category: AttributeCategory

    @property
    def track_term(self) -> str:
        """The streaming-API filter term for this node."""
        return f"@{self.screen_name}"


@dataclass(frozen=True)
class ProfileTarget:
    """Select ``count`` accounts whose ``spec`` value ≈ ``value``."""

    spec: AttributeSpec
    value: float
    count: int = 10

    @property
    def sample_label(self) -> str:
        return self.spec.sample_label(self.value)


@dataclass(frozen=True)
class CategoryTarget:
    """Select ``count`` accounts under a hashtag/trending attribute key."""

    key: str
    count: int = 100


@dataclass(frozen=True)
class SelectionPlan:
    """The full shopping list of one selection round."""

    profile_targets: tuple[ProfileTarget, ...] = ()
    category_targets: tuple[CategoryTarget, ...] = ()

    @property
    def total_requested(self) -> int:
        return sum(t.count for t in self.profile_targets) + sum(
            t.count for t in self.category_targets
        )

    @classmethod
    def full_paper_plan(cls, per_value: int = 10) -> "SelectionPlan":
        """The paper's 2,400-node plan (Section V-A).

        11 profile attributes x 10 sample values x ``per_value``
        accounts, plus 9 hashtag and 4 trending attributes at
        ``10 * per_value`` accounts each.
        """
        profile = tuple(
            ProfileTarget(spec, value, per_value)
            for spec in PROFILE_ATTRIBUTES
            for value in spec.sample_values
        )
        category = tuple(
            CategoryTarget(key, 10 * per_value)
            for key in HASHTAG_ATTRIBUTE_KEYS + TRENDING_ATTRIBUTE_KEYS
        )
        return cls(profile, category)

    @classmethod
    def random_plan(
        cls, n_targets: int, per_value: int, seed: int = 0
    ) -> "SelectionPlan":
        """Randomly chosen attributes (ground-truth collection, §V-C)."""
        rng = np.random.default_rng(seed)
        all_profile = [
            (spec, value)
            for spec in PROFILE_ATTRIBUTES
            for value in spec.sample_values
        ]
        n_category = len(HASHTAG_ATTRIBUTE_KEYS) + len(TRENDING_ATTRIBUTE_KEYS)
        picks = rng.choice(
            len(all_profile) + n_category, size=n_targets, replace=False
        )
        category_keys = HASHTAG_ATTRIBUTE_KEYS + TRENDING_ATTRIBUTE_KEYS
        profile_targets = []
        category_targets = []
        for pick in picks:
            if pick < len(all_profile):
                spec, value = all_profile[int(pick)]
                profile_targets.append(ProfileTarget(spec, value, per_value))
            else:
                key = category_keys[int(pick) - len(all_profile)]
                category_targets.append(CategoryTarget(key, per_value))
        return cls(tuple(profile_targets), tuple(category_targets))


@dataclass
class SelectionReport:
    """Bookkeeping of one selection round."""

    requested: int = 0
    selected: int = 0
    shortfalls: dict[str, int] = field(default_factory=dict)

    def record(self, label: str, requested: int, got: int) -> None:
        self.requested += requested
        self.selected += got
        if got < requested:
            self.shortfalls[label] = requested - got


def _candidate_base_arrays(candidates: list[UserProfile]) -> dict:
    """Columnized counters of the round's candidate profiles."""
    n = len(candidates)
    created = np.empty(n, dtype=np.float64)
    friends = np.empty(n, dtype=np.int64)
    followers = np.empty(n, dtype=np.int64)
    statuses = np.empty(n, dtype=np.int64)
    listed = np.empty(n, dtype=np.int64)
    favourites = np.empty(n, dtype=np.int64)
    for i, p in enumerate(candidates):
        created[i] = p.created_at
        friends[i] = p.friends_count
        followers[i] = p.followers_count
        statuses[i] = p.statuses_count
        listed[i] = p.listed_count
        favourites[i] = p.favourites_count
    return {
        "created": created,
        "friends": friends,
        "followers": followers,
        "statuses": statuses,
        "listed": listed,
        "favourites": favourites,
    }


class _CandidateColumns:
    """Columnar candidate set: account-store rows instead of snapshots.

    The profile-selection loop only ever needs three things from a
    candidate: its attribute-value columns (gathered straight off the
    account store), its user id, and — for the handful of winners — a
    screen name.  Keeping candidates as row indices skips ~pool-size
    ``UserProfile`` constructions per round; the gathered columns are
    the same arrays a snapshot would copy its fields from, so every
    derived value is bitwise-identical to the object path.
    """

    __slots__ = ("cols", "rows", "uids", "_base", "_profiles")

    def __init__(self, cols, rows: list[int]) -> None:
        self.cols = cols
        self.rows = rows
        idx = np.array(rows, dtype=np.intp)
        self.uids: list[int] = cols._arrays["user_id"][idx].tolist()
        self._base: dict | None = None
        self._profiles: list[UserProfile] | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def base_arrays(self) -> dict:
        """Gathered counter columns, shaped like ``_candidate_base_arrays``."""
        if self._base is None:
            arrays = self.cols._arrays
            idx = np.array(self.rows, dtype=np.intp)
            self._base = {
                "created": arrays["created_at"][idx],
                "friends": arrays["friends_count"][idx],
                "followers": arrays["followers_count"][idx],
                "statuses": arrays["statuses_count"][idx],
                "listed": arrays["listed_count"][idx],
                "favourites": arrays["favourites_count"][idx],
            }
        return self._base

    def screen_name(self, i: int) -> str:
        return self.cols.screen_name[self.rows[i]]

    def profiles(self) -> list[UserProfile]:
        """Materialized snapshots (only the unknown-attribute fallback)."""
        if self._profiles is None:
            self._profiles = self.cols.snapshot_rows(self.rows)
        return self._profiles


def _candidate_age_days(base: dict, now: float) -> np.ndarray:
    age = base.get("age_days")
    if age is None:
        age = np.maximum((now - base["created"]) / SECONDS_PER_DAY, 1.0)
        base["age_days"] = age
    return age


def _batch_attribute_values(
    key: str, base: dict, now: float
) -> np.ndarray | None:
    """Vectorized ``AttributeSpec.value_of`` over the candidate batch.

    Every Table II attribute is rational arithmetic over the profile
    counters, so the column-wise result is bitwise-equal to the
    per-profile scalar path.  Returns None for unknown keys (the
    caller falls back to scalar evaluation).
    """
    if key == "friends_count":
        return base["friends"].astype(np.float64)
    if key == "followers_count":
        return base["followers"].astype(np.float64)
    if key == "total_friends_followers":
        return (base["friends"] + base["followers"]).astype(np.float64)
    if key == "friend_follower_ratio":
        return base["friends"] / np.maximum(base["followers"], 1)
    if key == "account_age_days":
        return _candidate_age_days(base, now)
    if key == "lists_count":
        return base["listed"].astype(np.float64)
    if key == "favorites_count":
        return base["favourites"].astype(np.float64)
    if key == "status_count":
        return base["statuses"].astype(np.float64)
    if key == "avg_lists_per_day":
        return base["listed"] / _candidate_age_days(base, now)
    if key == "avg_favorites_per_day":
        return base["favourites"] / _candidate_age_days(base, now)
    if key == "avg_statuses_per_day":
        return base["statuses"] / _candidate_age_days(base, now)
    return None


class _RecentIndex:
    """Incrementally maintained index over the recent-tweet window.

    The sample stream is append-only and the indexed window is its
    suffix, so consecutive selection rounds see windows that differ
    only by a batch of new tweets at the tail and a batch of expired
    tweets at the head.  Instead of re-scanning all ``recent_limit``
    tweets every round, this structure ingests the new suffix and
    retires the expired prefix — the per-round cost tracks the tweet
    *rate*, not the window size.

    Every derived mapping matches a from-scratch rebuild exactly:

    * ``hashtag_authors`` / ``topic_authors`` keep author ids in
      window order (deques; expiry pops from the front, which is
      always the oldest occurrence).
    * ``author_last_post`` / ``author_name`` hold the newest
      in-window tweet's values; expiry only ever removes *older*
      tweets, so the stored value stays correct until the author's
      last tweet leaves the window, at which point the entry is
      dropped entirely.
    * ``author_used_hashtag`` / ``author_used_topic`` are backed by
      per-author occurrence counts so membership flips off exactly
      when the last qualifying tweet expires.
    * ``ordered_authors()`` reproduces the first-appearance order a
      sequential rebuild would produce as dict insertion order, by
      sorting authors on their earliest in-window sequence number.
    """

    __slots__ = (
        "window",
        "_next_seq",
        "hashtag_authors",
        "topic_authors",
        "hashtag_usage",
        "author_used_hashtag",
        "author_used_topic",
        "author_last_post",
        "author_name",
        "_author_seqs",
        "_author_hashtag_count",
        "_author_topic_count",
    )

    def __init__(self) -> None:
        self.window: list[Tweet] = []
        self._next_seq = 0
        self.hashtag_authors: defaultdict[str, deque[int]] = defaultdict(
            deque
        )
        self.topic_authors: defaultdict[str, deque[int]] = defaultdict(deque)
        self.hashtag_usage: Counter = Counter()
        self.author_used_hashtag: set[int] = set()
        self.author_used_topic: set[int] = set()
        self.author_last_post: dict[int, float] = {}
        self.author_name: dict[int, str] = {}
        self._author_seqs: dict[int, deque[int]] = {}
        self._author_hashtag_count: dict[int, int] = {}
        self._author_topic_count: dict[int, int] = {}

    # -- maintenance -------------------------------------------------------

    def _add(self, tweet: Tweet) -> None:
        uid = tweet.user.user_id
        self.author_last_post[uid] = tweet.created_at
        self.author_name[uid] = tweet.user.screen_name
        seqs = self._author_seqs.get(uid)
        if seqs is None:
            self._author_seqs[uid] = seqs = deque()
        seqs.append(self._next_seq)
        self._next_seq += 1
        for tag in tweet.hashtags:
            self.hashtag_authors[tag].append(uid)
            self.hashtag_usage[tag] += 1
            self._author_hashtag_count[uid] = (
                self._author_hashtag_count.get(uid, 0) + 1
            )
            self.author_used_hashtag.add(uid)
        if tweet.topic is not None:
            self.topic_authors[tweet.topic].append(uid)
            self._author_topic_count[uid] = (
                self._author_topic_count.get(uid, 0) + 1
            )
            self.author_used_topic.add(uid)

    def _expire(self, tweet: Tweet) -> None:
        uid = tweet.user.user_id
        seqs = self._author_seqs[uid]
        seqs.popleft()
        if not seqs:
            del self._author_seqs[uid]
            del self.author_last_post[uid]
            del self.author_name[uid]
        for tag in tweet.hashtags:
            authors = self.hashtag_authors[tag]
            authors.popleft()
            if not authors:
                del self.hashtag_authors[tag]
            remaining = self.hashtag_usage[tag] - 1
            if remaining:
                self.hashtag_usage[tag] = remaining
            else:
                del self.hashtag_usage[tag]
            count = self._author_hashtag_count[uid] - 1
            if count:
                self._author_hashtag_count[uid] = count
            else:
                del self._author_hashtag_count[uid]
                self.author_used_hashtag.discard(uid)
        if tweet.topic is not None:
            authors = self.topic_authors[tweet.topic]
            authors.popleft()
            if not authors:
                del self.topic_authors[tweet.topic]
            count = self._author_topic_count[uid] - 1
            if count:
                self._author_topic_count[uid] = count
            else:
                del self._author_topic_count[uid]
                self.author_used_topic.discard(uid)

    def advance(self, recent: list[Tweet]) -> bool:
        """Move the index to the new window; False if it can't diff.

        The diff relies on tweet ids increasing along the stream; when
        the shape doesn't match (stream reset, out-of-order ids), the
        caller should rebuild from scratch.
        """
        prev = self.window
        if not prev:
            if self._next_seq:
                return False
            for tweet in recent:
                self._add(tweet)
            self.window = list(recent)
            return True
        prev_last_id = prev[-1].tweet_id
        split = len(recent)
        while split > 0 and recent[split - 1].tweet_id > prev_last_id:
            split -= 1
        overlap = split
        expired = len(prev) - overlap
        if expired < 0:
            return False
        if overlap > 0 and (
            prev[expired].tweet_id != recent[0].tweet_id
            or prev[-1].tweet_id != recent[overlap - 1].tweet_id
        ):
            return False
        for tweet in prev[:expired]:
            self._expire(tweet)
        for tweet in recent[overlap:]:
            self._add(tweet)
        self.window = list(recent)
        return True

    # -- reads -------------------------------------------------------------

    def ordered_authors(self) -> list[int]:
        """Author ids in first-appearance (window) order."""
        n = len(self._author_seqs)
        if not n:
            return []
        uids = np.fromiter(self._author_seqs.keys(), dtype=np.int64, count=n)
        firsts = np.fromiter(
            (seqs[0] for seqs in self._author_seqs.values()),
            dtype=np.int64,
            count=n,
        )
        return uids[np.argsort(firsts, kind="stable")].tolist()

    def as_recent_index(self) -> dict:
        """The mapping bundle ``select()`` rounds consume."""
        return {
            "hashtag_authors": self.hashtag_authors,
            "topic_authors": self.topic_authors,
            "hashtag_usage": self.hashtag_usage,
            "author_used_hashtag": self.author_used_hashtag,
            "author_used_topic": self.author_used_topic,
            "author_last_post": self.author_last_post,
            "author_name": self.author_name,
            "ordered_authors": self.ordered_authors(),
        }


class AttributeSelector:
    """Screens accounts and assembles pseudo-honeypot node sets.

    Args:
        rest: REST client of the platform.
        candidate_pool: profile-candidate sample size per round.
        tolerance: multiplicative matching window around a sample value
            (a candidate matches value v when v/tolerance <= x <= v*tolerance).
        activity: Active/Dormant policy; only Active accounts are
            selected (pass None to disable the portability filter).
        recent_limit: size of the recent-tweet sample indexed per round.
        seed: tie-breaking randomness.
    """

    def __init__(
        self,
        rest: RestClient,
        candidate_pool: int = 6_000,
        tolerance: float = 1.6,
        activity: ActivityPolicy | None = None,
        recent_limit: int = 40_000,
        seed: int = 0,
    ) -> None:
        if tolerance <= 1.0:
            raise ValueError("tolerance must be > 1")
        self.rest = rest
        self.candidate_pool = candidate_pool
        self.tolerance = tolerance
        self.activity = activity
        self.recent_limit = recent_limit
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.last_report: SelectionReport | None = None
        self._recent_index = _RecentIndex()

    # ------------------------------------------------------------------

    def select(self, plan: SelectionPlan, now: float) -> list[HoneypotNode]:
        """Run one selection round and return the hour's node set.

        Accounts are used at most once across the whole round, so the
        returned nodes are distinct parasitic bodies.
        """
        report = SelectionReport()
        used: set[int] = set()
        nodes: list[HoneypotNode] = []

        recent_index = self._index_recent_sample()
        candidates = self._profile_candidates(now, recent_index)

        # Many targets share one spec (the paper plan has 10 sample
        # values per attribute), so candidate attribute values are
        # evaluated once per spec per round, not once per target.
        value_cache: dict[str, np.ndarray] = {}
        for target in plan.profile_targets:
            got = self._select_profile(
                target, now, candidates, used, nodes, value_cache
            )
            report.record(target.sample_label, target.count, got)

        for target in plan.category_targets:
            got = self._select_category(
                target, now, recent_index, used, nodes
            )
            report.record(target.key, target.count, got)

        self.last_report = report
        return nodes

    # ------------------------------------------------------------------

    def _index_recent_sample(self) -> dict:
        """One bulk read of the sample stream, indexed incrementally.

        Consecutive rounds see overlapping windows of the append-only
        stream, so the cached :class:`_RecentIndex` advances by the
        window diff; a full rebuild happens only when the stream shape
        changes underneath it (e.g. a fresh platform instance).
        """
        recent = self.rest.recent_sample(self.recent_limit)
        if not self._recent_index.advance(recent):
            self._recent_index = _RecentIndex()
            self._recent_index.advance(recent)
        return self._recent_index.as_recent_index()

    def _profile_candidates(
        self, now: float, recent_index: dict
    ) -> list[UserProfile] | _CandidateColumns:
        """Sample, look up, and activity-filter profile candidates.

        With a columnar account store the candidate set stays as row
        indices end to end (:class:`_CandidateColumns`); the object
        path below is the array-free fallback and the behavioral
        reference.
        """
        ids = self.rest.sample_user_ids(self.candidate_pool)
        batches = range(0, len(ids), RestClient.LOOKUP_BATCH)
        first_rows = self.rest.lookup_user_rows(
            ids[: RestClient.LOOKUP_BATCH]
        )
        if first_rows is not None:
            rows = list(first_rows)
            for start in batches[1:]:
                rows.extend(
                    self.rest.lookup_user_rows(
                        ids[start : start + RestClient.LOOKUP_BATCH]
                    )
                )
            candidates = _CandidateColumns(
                self.rest.account_columns, rows
            )
            if self.activity is None:
                return candidates
            last_post = recent_index["author_last_post"]
            is_active_from_history = self.activity.is_active_from_history
            is_active = self.activity.is_active
            kept = [
                row
                for row, uid in zip(candidates.rows, candidates.uids)
                if is_active_from_history(last_post.get(uid), now)
                or is_active(self.rest, uid, now)
            ]
            if len(kept) == len(candidates.rows):
                return candidates
            return _CandidateColumns(candidates.cols, kept)
        profiles: list[UserProfile] = []
        for start in batches:
            profiles.extend(
                self.rest.lookup_users(
                    ids[start : start + RestClient.LOOKUP_BATCH]
                )
            )
        if self.activity is None:
            return profiles
        last_post = recent_index["author_last_post"]
        return [
            p
            for p in profiles
            if self.activity.is_active_from_history(
                last_post.get(p.user_id), now
            )
            or self.activity.is_active(self.rest, p.user_id, now)
        ]

    def _select_profile(
        self,
        target: ProfileTarget,
        now: float,
        candidates: list[UserProfile] | _CandidateColumns,
        used: set[int],
        nodes: list[HoneypotNode],
        value_cache: dict[str, np.ndarray] | None = None,
    ) -> int:
        colset = (
            candidates if isinstance(candidates, _CandidateColumns) else None
        )
        matches: list[tuple[float, int, int]] = []
        log_tol = math.log(self.tolerance)
        if value_cache is None:
            value_cache = {}
        values = value_cache.get(target.spec.key)
        if values is None:
            if colset is not None:
                base = colset.base_arrays()
            else:
                base = value_cache.get("__base__")
                if base is None:
                    base = _candidate_base_arrays(candidates)
                    value_cache["__base__"] = base
            batched = _batch_attribute_values(target.spec.key, base, now)
            if batched is not None:
                values = batched
            else:
                profiles = (
                    colset.profiles() if colset is not None else candidates
                )
                values = np.array(
                    [target.spec.value_of(p, now) for p in profiles],
                    dtype=np.float64,
                )
            value_cache[target.spec.key] = values
        # Vector prefilter with slack, then an exact scalar confirm:
        # np.log is not bitwise-equal to math.log (last-ulp drift), so
        # the match predicate itself must stay scalar, but candidates
        # whose approximate distance misses by > 1e-6 (nine orders
        # above the drift plus the log-difference cancellation) can
        # never pass it.  log(values) is target-independent, so it is
        # computed once per attribute key and compared against
        # log(target) by subtraction — each target's prefilter then
        # costs two cheap array ops instead of a fresh transcendental
        # pass.
        logs_key = target.spec.key + "\x00log"
        logs = value_cache.get(logs_key)
        if logs is None:
            with np.errstate(divide="ignore", invalid="ignore"):
                logs = np.log(values)
            value_cache[logs_key] = logs
        if target.value <= 0:
            # log-distance to a non-positive target is undefined —
            # nothing can match (the ratio path yielded NaN here).
            return 0
        with np.errstate(invalid="ignore"):
            approx = np.abs(logs - math.log(target.value))
        near = np.nonzero((values > 0) & (approx <= log_tol + 1e-6))[0]
        # The confirm loop runs over plain Python floats/ints: the
        # unboxed lists are cached per attribute key (and per round
        # for the uids), so repeated targets pay only the loop itself.
        vals_key = target.spec.key + "\x00vals"
        vals = value_cache.get(vals_key)
        if vals is None:
            vals = value_cache[vals_key] = values.tolist()
        uids = value_cache.get("\x00uids")
        if uids is None:
            uids = (
                colset.uids
                if colset is not None
                else [profile.user_id for profile in candidates]
            )
            value_cache["\x00uids"] = uids
        target_value = target.value
        for ii in near.tolist():
            uid = uids[ii]
            if uid in used:
                continue
            distance = abs(math.log(vals[ii] / target_value))
            if distance <= log_tol:
                matches.append((distance, uid, ii))
        matches.sort(key=lambda entry: (entry[0], entry[1]))
        got = 0
        for __, uid, ii in matches[: target.count]:
            screen_name = (
                colset.screen_name(ii)
                if colset is not None
                else candidates[ii].screen_name
            )
            nodes.append(
                HoneypotNode(
                    user_id=uid,
                    screen_name=screen_name,
                    attribute_key=target.spec.key,
                    sample_label=target.sample_label,
                    category=AttributeCategory.PROFILE,
                )
            )
            used.add(uid)
            got += 1
        return got

    def _select_category(
        self,
        target: CategoryTarget,
        now: float,
        recent_index: dict,
        used: set[int],
        nodes: list[HoneypotNode],
    ) -> int:
        key = target.key
        category = category_of_key(key)
        if category is AttributeCategory.HASHTAG:
            author_pool = self._hashtag_author_pool(key, recent_index)
        else:
            author_pool = self._trending_author_pool(key, recent_index)
        author_name = recent_index["author_name"]
        got = 0
        for uid in author_pool:
            if got >= target.count:
                break
            if uid in used or uid not in author_name:
                continue
            nodes.append(
                HoneypotNode(
                    user_id=uid,
                    screen_name=author_name[uid],
                    attribute_key=key,
                    sample_label=key,
                    category=category,
                )
            )
            used.add(uid)
            got += 1
        return got

    def _hashtag_author_pool(self, key: str, recent_index: dict) -> list[int]:
        hashtag_authors = recent_index["hashtag_authors"]
        usage = recent_index["hashtag_usage"]
        if key == "no_hashtag":
            pool = [
                uid
                for uid in recent_index["ordered_authors"]
                if uid not in recent_index["author_used_hashtag"]
            ]
            self._rng.shuffle(pool)
            return pool
        hashtag_category = hashtag_category_of_key(key)
        tags = sorted(
            HASHTAG_POOLS[hashtag_category],
            key=lambda tag: (-usage[tag], tag),
        )[:10]
        # Round-robin the top-10 hashtags: ~count/10 authors per tag.
        pool: list[int] = []
        queues = [list(dict.fromkeys(hashtag_authors[tag])) for tag in tags]
        while any(queues):
            for queue in queues:
                if queue:
                    pool.append(queue.pop(0))
        return list(dict.fromkeys(pool))

    def _trending_author_pool(self, key: str, recent_index: dict) -> list[int]:
        topic_authors = recent_index["topic_authors"]
        if key == "no_trending":
            pool = [
                uid
                for uid in recent_index["ordered_authors"]
                if uid not in recent_index["author_used_topic"]
            ]
            self._rng.shuffle(pool)
            return pool
        trending = self.rest.trending_sets()
        topics = {
            "trending_up": trending["trending_up"],
            "trending_down": trending["trending_down"],
            "popular_tweets": trending["popular"],
        }[key]
        pool: list[int] = []
        queues = [
            list(dict.fromkeys(topic_authors[topic]))
            for topic in sorted(topics)
        ]
        while any(queues):
            for queue in queues:
                if queue:
                    pool.append(queue.pop(0))
        return list(dict.fromkeys(pool))
