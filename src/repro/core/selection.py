"""Attribute-based pseudo-honeypot node selection (Sections III-B/C).

The selector screens live accounts against the Table I/II criteria and
returns the hour's parasitic bodies.  Everything it reads comes through
the public REST surface: a candidate sample, batch profile lookups, a
recent-tweet sample (indexed locally into hashtag/topic -> author maps),
and the trending classification.  Per Section III-D, only *Active*
accounts are eligible (see :mod:`repro.core.portability`).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..twittersim.api.rest import RestClient
from ..twittersim.entities import UserProfile
from ..twittersim.hashtags import HASHTAG_POOLS
from .attributes import (
    AttributeCategory,
    AttributeSpec,
    HASHTAG_ATTRIBUTE_KEYS,
    PROFILE_ATTRIBUTES,
    TRENDING_ATTRIBUTE_KEYS,
    category_of_key,
    hashtag_category_of_key,
)
from .portability import ActivityPolicy


@dataclass(frozen=True)
class HoneypotNode:
    """One selected parasitic body for the current hour."""

    user_id: int
    screen_name: str
    attribute_key: str
    sample_label: str
    category: AttributeCategory

    @property
    def track_term(self) -> str:
        """The streaming-API filter term for this node."""
        return f"@{self.screen_name}"


@dataclass(frozen=True)
class ProfileTarget:
    """Select ``count`` accounts whose ``spec`` value ≈ ``value``."""

    spec: AttributeSpec
    value: float
    count: int = 10

    @property
    def sample_label(self) -> str:
        return self.spec.sample_label(self.value)


@dataclass(frozen=True)
class CategoryTarget:
    """Select ``count`` accounts under a hashtag/trending attribute key."""

    key: str
    count: int = 100


@dataclass(frozen=True)
class SelectionPlan:
    """The full shopping list of one selection round."""

    profile_targets: tuple[ProfileTarget, ...] = ()
    category_targets: tuple[CategoryTarget, ...] = ()

    @property
    def total_requested(self) -> int:
        return sum(t.count for t in self.profile_targets) + sum(
            t.count for t in self.category_targets
        )

    @classmethod
    def full_paper_plan(cls, per_value: int = 10) -> "SelectionPlan":
        """The paper's 2,400-node plan (Section V-A).

        11 profile attributes x 10 sample values x ``per_value``
        accounts, plus 9 hashtag and 4 trending attributes at
        ``10 * per_value`` accounts each.
        """
        profile = tuple(
            ProfileTarget(spec, value, per_value)
            for spec in PROFILE_ATTRIBUTES
            for value in spec.sample_values
        )
        category = tuple(
            CategoryTarget(key, 10 * per_value)
            for key in HASHTAG_ATTRIBUTE_KEYS + TRENDING_ATTRIBUTE_KEYS
        )
        return cls(profile, category)

    @classmethod
    def random_plan(
        cls, n_targets: int, per_value: int, seed: int = 0
    ) -> "SelectionPlan":
        """Randomly chosen attributes (ground-truth collection, §V-C)."""
        rng = np.random.default_rng(seed)
        all_profile = [
            (spec, value)
            for spec in PROFILE_ATTRIBUTES
            for value in spec.sample_values
        ]
        n_category = len(HASHTAG_ATTRIBUTE_KEYS) + len(TRENDING_ATTRIBUTE_KEYS)
        picks = rng.choice(
            len(all_profile) + n_category, size=n_targets, replace=False
        )
        category_keys = HASHTAG_ATTRIBUTE_KEYS + TRENDING_ATTRIBUTE_KEYS
        profile_targets = []
        category_targets = []
        for pick in picks:
            if pick < len(all_profile):
                spec, value = all_profile[int(pick)]
                profile_targets.append(ProfileTarget(spec, value, per_value))
            else:
                key = category_keys[int(pick) - len(all_profile)]
                category_targets.append(CategoryTarget(key, per_value))
        return cls(tuple(profile_targets), tuple(category_targets))


@dataclass
class SelectionReport:
    """Bookkeeping of one selection round."""

    requested: int = 0
    selected: int = 0
    shortfalls: dict[str, int] = field(default_factory=dict)

    def record(self, label: str, requested: int, got: int) -> None:
        self.requested += requested
        self.selected += got
        if got < requested:
            self.shortfalls[label] = requested - got


class AttributeSelector:
    """Screens accounts and assembles pseudo-honeypot node sets.

    Args:
        rest: REST client of the platform.
        candidate_pool: profile-candidate sample size per round.
        tolerance: multiplicative matching window around a sample value
            (a candidate matches value v when v/tolerance <= x <= v*tolerance).
        activity: Active/Dormant policy; only Active accounts are
            selected (pass None to disable the portability filter).
        recent_limit: size of the recent-tweet sample indexed per round.
        seed: tie-breaking randomness.
    """

    def __init__(
        self,
        rest: RestClient,
        candidate_pool: int = 6_000,
        tolerance: float = 1.6,
        activity: ActivityPolicy | None = None,
        recent_limit: int = 40_000,
        seed: int = 0,
    ) -> None:
        if tolerance <= 1.0:
            raise ValueError("tolerance must be > 1")
        self.rest = rest
        self.candidate_pool = candidate_pool
        self.tolerance = tolerance
        self.activity = activity
        self.recent_limit = recent_limit
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.last_report: SelectionReport | None = None

    # ------------------------------------------------------------------

    def select(self, plan: SelectionPlan, now: float) -> list[HoneypotNode]:
        """Run one selection round and return the hour's node set.

        Accounts are used at most once across the whole round, so the
        returned nodes are distinct parasitic bodies.
        """
        report = SelectionReport()
        used: set[int] = set()
        nodes: list[HoneypotNode] = []

        recent_index = self._index_recent_sample()
        candidates = self._profile_candidates(now, recent_index)

        for target in plan.profile_targets:
            got = self._select_profile(
                target, now, candidates, used, nodes
            )
            report.record(target.sample_label, target.count, got)

        for target in plan.category_targets:
            got = self._select_category(
                target, now, recent_index, used, nodes
            )
            report.record(target.key, target.count, got)

        self.last_report = report
        return nodes

    # ------------------------------------------------------------------

    def _index_recent_sample(self) -> dict:
        """One bulk read of the sample stream, indexed locally."""
        recent = self.rest.recent_sample(self.recent_limit)
        hashtag_authors: dict[str, list[int]] = defaultdict(list)
        topic_authors: dict[str, list[int]] = defaultdict(list)
        hashtag_usage: Counter = Counter()
        author_used_hashtag: set[int] = set()
        author_used_topic: set[int] = set()
        author_last_post: dict[int, float] = {}
        author_name: dict[int, str] = {}
        for tweet in recent:
            uid = tweet.user.user_id
            author_last_post[uid] = tweet.created_at
            author_name[uid] = tweet.user.screen_name
            for tag in tweet.hashtags:
                hashtag_authors[tag].append(uid)
                hashtag_usage[tag] += 1
                author_used_hashtag.add(uid)
            if tweet.topic is not None:
                topic_authors[tweet.topic].append(uid)
                author_used_topic.add(uid)
        return {
            "hashtag_authors": hashtag_authors,
            "topic_authors": topic_authors,
            "hashtag_usage": hashtag_usage,
            "author_used_hashtag": author_used_hashtag,
            "author_used_topic": author_used_topic,
            "author_last_post": author_last_post,
            "author_name": author_name,
        }

    def _profile_candidates(
        self, now: float, recent_index: dict
    ) -> list[UserProfile]:
        """Sample, look up, and activity-filter profile candidates."""
        ids = self.rest.sample_user_ids(self.candidate_pool)
        profiles: list[UserProfile] = []
        for start in range(0, len(ids), RestClient.LOOKUP_BATCH):
            profiles.extend(
                self.rest.lookup_users(
                    ids[start : start + RestClient.LOOKUP_BATCH]
                )
            )
        if self.activity is None:
            return profiles
        last_post = recent_index["author_last_post"]
        return [
            p
            for p in profiles
            if self.activity.is_active_from_history(
                last_post.get(p.user_id), now
            )
            or self.activity.is_active(self.rest, p.user_id, now)
        ]

    def _select_profile(
        self,
        target: ProfileTarget,
        now: float,
        candidates: list[UserProfile],
        used: set[int],
        nodes: list[HoneypotNode],
    ) -> int:
        matches: list[tuple[float, UserProfile]] = []
        log_tol = math.log(self.tolerance)
        for profile in candidates:
            if profile.user_id in used:
                continue
            value = target.spec.value_of(profile, now)
            if value <= 0:
                continue
            distance = abs(math.log(value / target.value))
            if distance <= log_tol:
                matches.append((distance, profile))
        matches.sort(key=lambda pair: (pair[0], pair[1].user_id))
        got = 0
        for __, profile in matches[: target.count]:
            nodes.append(
                HoneypotNode(
                    user_id=profile.user_id,
                    screen_name=profile.screen_name,
                    attribute_key=target.spec.key,
                    sample_label=target.sample_label,
                    category=AttributeCategory.PROFILE,
                )
            )
            used.add(profile.user_id)
            got += 1
        return got

    def _select_category(
        self,
        target: CategoryTarget,
        now: float,
        recent_index: dict,
        used: set[int],
        nodes: list[HoneypotNode],
    ) -> int:
        key = target.key
        category = category_of_key(key)
        if category is AttributeCategory.HASHTAG:
            author_pool = self._hashtag_author_pool(key, recent_index)
        else:
            author_pool = self._trending_author_pool(key, recent_index)
        author_name = recent_index["author_name"]
        got = 0
        for uid in author_pool:
            if got >= target.count:
                break
            if uid in used or uid not in author_name:
                continue
            nodes.append(
                HoneypotNode(
                    user_id=uid,
                    screen_name=author_name[uid],
                    attribute_key=key,
                    sample_label=key,
                    category=category,
                )
            )
            used.add(uid)
            got += 1
        return got

    def _hashtag_author_pool(self, key: str, recent_index: dict) -> list[int]:
        hashtag_authors = recent_index["hashtag_authors"]
        usage = recent_index["hashtag_usage"]
        if key == "no_hashtag":
            pool = [
                uid
                for uid in recent_index["author_last_post"]
                if uid not in recent_index["author_used_hashtag"]
            ]
            self._rng.shuffle(pool)
            return pool
        hashtag_category = hashtag_category_of_key(key)
        tags = sorted(
            HASHTAG_POOLS[hashtag_category],
            key=lambda tag: (-usage[tag], tag),
        )[:10]
        # Round-robin the top-10 hashtags: ~count/10 authors per tag.
        pool: list[int] = []
        queues = [list(dict.fromkeys(hashtag_authors[tag])) for tag in tags]
        while any(queues):
            for queue in queues:
                if queue:
                    pool.append(queue.pop(0))
        return list(dict.fromkeys(pool))

    def _trending_author_pool(self, key: str, recent_index: dict) -> list[int]:
        topic_authors = recent_index["topic_authors"]
        if key == "no_trending":
            pool = [
                uid
                for uid in recent_index["author_last_post"]
                if uid not in recent_index["author_used_topic"]
            ]
            self._rng.shuffle(pool)
            return pool
        trending = self.rest.trending_sets()
        topics = {
            "trending_up": trending["trending_up"],
            "trending_down": trending["trending_down"],
            "popular_tweets": trending["popular"],
        }[key]
        pool: list[int] = []
        queues = [
            list(dict.fromkeys(topic_authors[topic]))
            for topic in sorted(topics)
        ]
        while any(queues):
            for queue in queues:
                if queue:
                    pool.append(queue.pop(0))
        return list(dict.fromkeys(pool))
