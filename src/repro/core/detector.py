"""The pseudo-honeypot spam detector (Section IV).

Couples the 58-feature extractor with a pluggable classifier (the paper
deploys Random Forest with 70 trees after the Table-IV comparison).
Training consumes the ground-truth dataset; classification runs over
captured streams in timestamp order, feeding every confirmed spam back
into the environment-score tracker — the paper's online
reverse-engineering loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..features.environment import EnvironmentScoreTracker
from ..features.extractor import FeatureExtractor
from ..labeling.pipeline import LabeledDataset
from ..ml.base import Classifier
from ..ml.forest import RandomForestClassifier
from ..obs import get_registry, trace
from .monitor import CapturedTweet


def default_classifier(seed: int = 0) -> RandomForestClassifier:
    """The paper's deployed configuration: RF, 70 trees, depth 700."""
    return RandomForestClassifier(
        n_estimators=70, max_depth=700, seed=seed
    )


@dataclass
class ClassificationOutcome:
    """Result of classifying a captured stream."""

    captures: list[CapturedTweet]
    is_spam: np.ndarray
    spammer_ids: set[int] = field(default_factory=set)

    @property
    def n_spams(self) -> int:
        return int(self.is_spam.sum())

    @property
    def n_spammers(self) -> int:
        return len(self.spammer_ids)

    @property
    def n_tweets(self) -> int:
        return len(self.captures)


class PseudoHoneypotDetector:
    """Feature pipeline + classifier, trained on labeled captures.

    Args:
        classifier: any :class:`repro.ml.base.Classifier`; defaults to
            the paper's RF(70, depth 700).
        environment: shared group-likelihood tracker (fresh if omitted);
            the same tracker must be used for training and deployment so
            environment scores stay comparable.
    """

    def __init__(
        self,
        classifier: Classifier | None = None,
        environment: EnvironmentScoreTracker | None = None,
    ) -> None:
        self.classifier: Classifier = classifier or default_classifier()
        self.environment = environment or EnvironmentScoreTracker()
        self._fitted = False

    @property
    def fitted(self) -> bool:
        """Whether the detector is ready to classify."""
        return self._fitted

    @classmethod
    def from_fitted_classifier(
        cls,
        classifier: Classifier,
        environment: EnvironmentScoreTracker | None = None,
    ) -> "PseudoHoneypotDetector":
        """Wrap an already-fitted classifier, ready to classify.

        The service/soak harnesses fit classifiers outside the
        capture-labeling flow (e.g. on synthetic matrices) and only
        need the extraction + feedback plumbing around them.
        """
        detector = cls(classifier=classifier, environment=environment)
        detector._fitted = True
        return detector

    # ------------------------------------------------------------------

    def extract_features(
        self, captures: list[CapturedTweet], labels: np.ndarray | None = None
    ) -> np.ndarray:
        """(n, 58) features of captures, in timestamp order.

        When ``labels`` is given (training), confirmed spams update the
        environment tracker as they stream past, exactly as they would
        during live collection.
        """
        captures = sorted(captures, key=lambda c: c.tweet.created_at)
        extractor = FeatureExtractor(environment=self.environment)
        rows = np.empty((len(captures), 58))
        for i, capture in enumerate(captures):
            extractor.set_honeypot_ids(set(capture.node_user_ids))
            rows[i] = extractor.extract(capture.tweet, capture.attribute_keys)
            if labels is not None and labels[i]:
                extractor.notify_spam(capture.tweet, capture.attribute_keys)
        return rows

    def fit(
        self, captures: list[CapturedTweet], labels: np.ndarray
    ) -> "PseudoHoneypotDetector":
        """Train on labeled captures; returns self.

        Raises:
            ValueError: on empty or misaligned input.
        """
        if len(captures) != len(labels):
            raise ValueError("captures and labels must align")
        if len(captures) == 0:
            raise ValueError("cannot fit on an empty capture set")
        order = np.argsort([c.tweet.created_at for c in captures])
        captures = [captures[i] for i in order]
        labels = np.asarray(labels)[order]
        with trace("ml.fit") as span:
            with trace("ml.extract_features") as extract_span:
                X = self.extract_features(captures, labels)
                extract_span.set(n_rows=X.shape[0], n_features=X.shape[1])
            self.classifier.fit(X, labels)
            span.set(
                n_samples=len(captures),
                n_spam_labels=int(np.asarray(labels).sum()),
                classifier=type(self.classifier).__name__,
            )
        get_registry().counter("ml.fits").inc()
        self._fitted = True
        return self

    def fit_from_ground_truth(
        self, captures: list[CapturedTweet], dataset: LabeledDataset
    ) -> "PseudoHoneypotDetector":
        """Train using a :class:`LabeledDataset` keyed by tweet id.

        Captures whose tweets the dataset never labeled are skipped.
        """
        label_of = {
            tweet.tweet_id: int(dataset.tweet_labels[i])
            for i, tweet in enumerate(dataset.tweets)
        }
        kept = [c for c in captures if c.tweet.tweet_id in label_of]
        labels = np.array([label_of[c.tweet.tweet_id] for c in kept])
        return self.fit(kept, labels)

    def classify(
        self, captures: list[CapturedTweet], chunk_size: int = 2_000
    ) -> ClassificationOutcome:
        """Classify a captured stream; spams update environment scores.

        The stream is processed in timestamp-ordered chunks: features
        of a chunk are extracted with the environment state as of the
        previous chunk, the chunk is classified, and its confirmed
        spams update the tracker before the next chunk — the paper's
        online feedback loop at batch granularity (predicting tweet by
        tweet would forfeit vectorized inference for no behavioral
        difference at this timescale).

        Raises:
            RuntimeError: if the detector was never fitted.
        """
        if not self._fitted:
            raise RuntimeError("detector must be fit before classifying")
        order = np.argsort([c.tweet.created_at for c in captures])
        ordered = [captures[i] for i in order]
        extractor = FeatureExtractor(environment=self.environment)
        is_spam = np.zeros(len(ordered), dtype=np.int64)
        spammer_ids: set[int] = set()
        for start in range(0, len(ordered), chunk_size):
            chunk = ordered[start : start + chunk_size]
            X = np.empty((len(chunk), 58))
            for i, capture in enumerate(chunk):
                extractor.set_honeypot_ids(set(capture.node_user_ids))
                X[i] = extractor.extract(
                    capture.tweet, capture.attribute_keys
                )
            verdicts = np.asarray(
                self.classifier.predict(X), dtype=np.int64
            )
            is_spam[start : start + len(chunk)] = verdicts
            for capture, spam in zip(chunk, verdicts):
                if spam:
                    spammer_ids.add(capture.sender_id)
                    self.environment.record_spam(capture.attribute_keys)
        return ClassificationOutcome(
            captures=ordered, is_spam=is_spam, spammer_ids=spammer_ids
        )
