"""Live garner telemetry: hourly PGE estimates while the run flies.

``pge_ranking`` (Section V-E / Table VI) is post-hoc: spammers per
node-hour can only be *final* once the detector has issued verdicts.
But the ROADMAP's adaptive controller (item 4) needs a garner signal
at every monitored hour — which bands are pulling in distinct users
per node-hour *right now* — to treat as bandit feedback.  This module
is that signal:

* :class:`GarnerTelemetry` folds the monitor's capture buffer into
  per-band tallies incrementally (cursor-based — each capture is
  observed exactly once, no matter how often :meth:`observe` runs or
  whether backfills append mid-hour);
* bounded-cardinality counters ``pge.captures`` and
  ``pge.garner.<attribute>`` land in the metrics snapshot (sample-bin
  detail stays in events: band labels like ``followers_count=1e+06``
  would explode the counter namespace);
* :meth:`band_snapshot` is the payload of the hourly ``pge.snapshot``
  event — per-band tweets, distinct users, node-hours, and the live
  garner rate ``users / node-hours`` (the PGE numerator's best
  mid-run proxy; the *final* snapshot swaps in true spammer counts).

Everything here is a pure fold over deterministic inputs, so the
counters — unlike wall-clock span data — are safe to keep in
byte-stable report artifacts.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Sequence

from ..obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .monitor import CapturedTweet
    from .network import ExposureLedger

_SUFFIX_RE = re.compile(r"[^a-z0-9_]+")


def metric_suffix(label: str) -> str:
    """A taxonomy-safe metric suffix for an attribute or band label.

    Band labels carry ``=`` / ``+`` / ``.`` (``friends_count=1e+06``),
    which the span/metric taxonomy rejects; collapse every illegal run
    to one underscore.
    """
    return _SUFFIX_RE.sub("_", label.lower()).strip("_")


class _BandTally:
    """Running capture tally of one sampling band."""

    __slots__ = ("tweets", "user_ids")

    def __init__(self) -> None:
        self.tweets = 0
        self.user_ids: set[int] = set()


class GarnerTelemetry:
    """Incremental per-band garner accounting over a capture buffer.

    Args:
        exposure: the owning network's exposure ledger — supplies the
            node-hours denominator per band, so snapshots always rate
            against the hours actually deployed.
    """

    def __init__(self, exposure: "ExposureLedger") -> None:
        self._exposure = exposure
        self._cursor = 0
        self._bands: dict[str, _BandTally] = {}
        self._users_by_attribute: dict[str, set[int]] = {}
        registry = get_registry()
        self._m_captures = registry.counter("pge.captures")
        self._m_garner: dict[str, object] = {}

    @property
    def observed(self) -> int:
        """How many captures have been folded in so far."""
        return self._cursor

    def observe(self, captures: Sequence["CapturedTweet"]) -> int:
        """Fold in captures appended since the last call.

        The cursor makes this idempotent over a growing buffer: only
        ``captures[cursor:]`` is new, so hourly calls, backfill
        catch-ups, and the shutdown sweep never double-count.

        Returns:
            The number of newly observed captures.
        """
        new = captures[self._cursor :]
        if not new:
            return 0
        self._cursor = len(captures)
        self._m_captures.inc(len(new))
        for capture in new:
            sender = capture.sender_id
            for label in capture.sample_labels:
                tally = self._bands.get(label)
                if tally is None:
                    tally = self._bands[label] = _BandTally()
                tally.tweets += 1
                tally.user_ids.add(sender)
            for key in capture.attribute_keys:
                seen = self._users_by_attribute.get(key)
                if seen is None:
                    seen = self._users_by_attribute[key] = set()
                if sender not in seen:
                    seen.add(sender)
                    counter = self._m_garner.get(key)
                    if counter is None:
                        counter = self._m_garner[key] = (
                            get_registry().counter(
                                f"pge.garner.{metric_suffix(key)}"
                            )
                        )
                    counter.inc()  # type: ignore[attr-defined]
        return len(new)

    def band_snapshot(self) -> list[dict[str, object]]:
        """Per-band live garner rates, strongest band first.

        Each row: ``band`` (sample label), ``tweets``, ``users``
        (distinct senders), ``node_hours`` (from the exposure ledger),
        and ``rate`` = users per node-hour — the live analogue of the
        PGE column.  Bands with zero recorded exposure rate as 0 (no
        nodes were ever deployed under them this run).
        """
        rows = []
        for band, tally in self._bands.items():
            node_hours = self._exposure.by_sample.get(band, 0)
            users = len(tally.user_ids)
            rate = users / node_hours if node_hours > 0 else 0.0
            rows.append(
                {
                    "band": band,
                    "tweets": tally.tweets,
                    "users": users,
                    "node_hours": node_hours,
                    "rate": round(rate, 6),
                }
            )
        rows.sort(key=lambda row: (-row["rate"], row["band"]))
        return rows
