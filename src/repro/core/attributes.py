"""Selection attributes of the pseudo-honeypot (Tables I and II).

Three categories:

* **C1 profile-based** — 11 attributes, each sampled at the 10 values
  of Table II, 10 accounts per value (1,100 nodes);
* **C2 hashtag-based** — 8 topical classes plus *no hashtag*
  (900 nodes);
* **C3 trending-based** — trending-up / trending-down / popular /
  no-trending (400 nodes);

for the paper's 2,400-node network.  ``AttributeSpec.value_of`` turns a
profile snapshot into the attribute's numeric value, so selection and
result aggregation share one definition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..twittersim.entities import UserProfile
from ..twittersim.hashtags import HashtagCategory


class AttributeCategory(enum.Enum):
    """Table I's three attribute categories."""

    PROFILE = "profile"
    HASHTAG = "hashtag"
    TRENDING = "trending"


@dataclass(frozen=True)
class AttributeSpec:
    """One profile-based selection attribute with its sample values."""

    key: str
    description: str
    sample_values: tuple[float, ...]
    value_of: Callable[[UserProfile, float], float]

    def sample_label(self, value: float) -> str:
        """Stable label of one sampling bin, e.g. ``friends_count=1000``."""
        text = f"{value:g}"
        return f"{self.key}={text}"


def _ratio(profile: UserProfile, now: float) -> float:
    return profile.friend_follower_ratio()


#: Table II, in row order.
PROFILE_ATTRIBUTES: tuple[AttributeSpec, ...] = (
    AttributeSpec(
        "friends_count",
        "friends count",
        (10, 50, 100, 200, 300, 500, 1_000, 3_000, 5_000, 10_000),
        lambda p, now: float(p.friends_count),
    ),
    AttributeSpec(
        "followers_count",
        "follower count",
        (10, 50, 100, 200, 300, 500, 1_000, 3_000, 5_000, 10_000),
        lambda p, now: float(p.followers_count),
    ),
    AttributeSpec(
        "total_friends_followers",
        "total friends and followers",
        (20, 100, 200, 500, 1_000, 2_000, 3_000, 5_000, 10_000, 30_000),
        lambda p, now: float(p.friends_count + p.followers_count),
    ),
    AttributeSpec(
        "friend_follower_ratio",
        "ratio of friends and followers",
        (1 / 10, 1 / 8, 1 / 4, 1 / 2, 1, 2, 4, 6, 8, 10),
        _ratio,
    ),
    AttributeSpec(
        "account_age_days",
        "account age (days)",
        (10, 50, 100, 300, 500, 1_000, 1_500, 2_000, 2_500, 3_000),
        lambda p, now: p.age_days(now),
    ),
    AttributeSpec(
        "lists_count",
        "lists count",
        (10, 20, 30, 40, 50, 70, 100, 200, 300, 500),
        lambda p, now: float(p.listed_count),
    ),
    AttributeSpec(
        "favorites_count",
        "favorites count",
        (10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 200_000),
        lambda p, now: float(p.favourites_count),
    ),
    AttributeSpec(
        "status_count",
        "status count",
        (10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 200_000),
        lambda p, now: float(p.statuses_count),
    ),
    AttributeSpec(
        "avg_lists_per_day",
        "average of lists per day",
        (1 / 100, 1 / 50, 1 / 20, 1 / 10, 1 / 8, 1 / 6, 1 / 4, 1 / 2, 1, 2),
        lambda p, now: p.avg_lists_per_day(now),
    ),
    AttributeSpec(
        "avg_favorites_per_day",
        "average of favorites per day",
        (1 / 50, 1 / 10, 1 / 5, 1 / 2, 1, 2, 3, 5, 10, 50),
        lambda p, now: p.avg_favourites_per_day(now),
    ),
    AttributeSpec(
        "avg_statuses_per_day",
        "average of statuses per day",
        (1 / 50, 1 / 10, 1 / 5, 1 / 2, 1, 2, 3, 4, 10, 50),
        lambda p, now: p.avg_statuses_per_day(now),
    ),
)

PROFILE_ATTRIBUTE_BY_KEY: dict[str, AttributeSpec] = {
    spec.key: spec for spec in PROFILE_ATTRIBUTES
}

#: Hashtag attribute keys: the 8 classes of Table I plus no-hashtag.
HASHTAG_ATTRIBUTE_KEYS: tuple[str, ...] = tuple(
    f"hashtag_{category.value}" for category in HashtagCategory
) + ("no_hashtag",)

#: Trending attribute keys of Table I.
TRENDING_ATTRIBUTE_KEYS: tuple[str, ...] = (
    "trending_up",
    "trending_down",
    "popular_tweets",
    "no_trending",
)

#: Every attribute key the full 2,400-node network selects on.
ALL_ATTRIBUTE_KEYS: tuple[str, ...] = (
    tuple(spec.key for spec in PROFILE_ATTRIBUTES)
    + HASHTAG_ATTRIBUTE_KEYS
    + TRENDING_ATTRIBUTE_KEYS
)


def category_of_key(key: str) -> AttributeCategory:
    """Category of an attribute key.

    Raises:
        KeyError: unknown key.
    """
    if key in PROFILE_ATTRIBUTE_BY_KEY:
        return AttributeCategory.PROFILE
    if key in HASHTAG_ATTRIBUTE_KEYS:
        return AttributeCategory.HASHTAG
    if key in TRENDING_ATTRIBUTE_KEYS:
        return AttributeCategory.TRENDING
    raise KeyError(f"unknown attribute key {key!r}")


def hashtag_category_of_key(key: str) -> HashtagCategory | None:
    """HashtagCategory for a ``hashtag_*`` key, None for ``no_hashtag``.

    Raises:
        KeyError: if the key is not a hashtag attribute.
    """
    if key == "no_hashtag":
        return None
    if key in HASHTAG_ATTRIBUTE_KEYS:
        return HashtagCategory(key.removeprefix("hashtag_"))
    raise KeyError(f"{key!r} is not a hashtag attribute")
