"""The paper's contribution: the pseudo-honeypot system."""

from .attributes import (
    ALL_ATTRIBUTE_KEYS,
    HASHTAG_ATTRIBUTE_KEYS,
    PROFILE_ATTRIBUTE_BY_KEY,
    PROFILE_ATTRIBUTES,
    TRENDING_ATTRIBUTE_KEYS,
    AttributeCategory,
    AttributeSpec,
    category_of_key,
    hashtag_category_of_key,
)
from .detector import (
    ClassificationOutcome,
    PseudoHoneypotDetector,
    default_classifier,
)
from .experiment import NetworkRun, PseudoHoneypotExperiment
from .monitor import CaptureCategory, CapturedTweet, PseudoHoneypotMonitor
from .network import ExposureLedger, PseudoHoneypotNetwork
from .pge import (
    AttributeStats,
    PgeEntry,
    advanced_plan_from_pge,
    aggregate,
    overall_pge,
    parse_sample_label,
    pge_by_attribute,
    pge_by_sample,
    pge_ranking,
    spam_count_distribution,
)
from .portability import ActivityPolicy
from .selection import (
    AttributeSelector,
    CategoryTarget,
    HoneypotNode,
    ProfileTarget,
    SelectionPlan,
    SelectionReport,
)

__all__ = [
    "ALL_ATTRIBUTE_KEYS",
    "ActivityPolicy",
    "AttributeCategory",
    "AttributeSelector",
    "AttributeSpec",
    "AttributeStats",
    "CaptureCategory",
    "CapturedTweet",
    "CategoryTarget",
    "ClassificationOutcome",
    "ExposureLedger",
    "HASHTAG_ATTRIBUTE_KEYS",
    "HoneypotNode",
    "NetworkRun",
    "PROFILE_ATTRIBUTES",
    "PROFILE_ATTRIBUTE_BY_KEY",
    "PgeEntry",
    "ProfileTarget",
    "PseudoHoneypotDetector",
    "PseudoHoneypotExperiment",
    "PseudoHoneypotMonitor",
    "PseudoHoneypotNetwork",
    "SelectionPlan",
    "SelectionReport",
    "TRENDING_ATTRIBUTE_KEYS",
    "advanced_plan_from_pge",
    "aggregate",
    "category_of_key",
    "default_classifier",
    "hashtag_category_of_key",
    "overall_pge",
    "parse_sample_label",
    "pge_by_attribute",
    "pge_by_sample",
    "pge_ranking",
    "spam_count_distribution",
]
