"""End-to-end experiment orchestration (Section V).

``PseudoHoneypotExperiment`` owns one synthetic world and walks the
paper's phases on its clock:

1. ``collect_ground_truth`` — a small random-attribute network gathers
   the training capture (paper: 100 nodes, 300 hours);
2. ``label_ground_truth`` — the four-stage labeling pipeline (Table III);
3. ``train_detector`` — fit the deployed classifier on the labels;
4. ``run_full_network`` — the 2,400-node attribute sweep (Tables V/VI,
   Figures 2-5);
5. ``classify`` — run the detector over any capture set;
6. ``run_plan`` — deploy an arbitrary plan (advanced system, baselines)
   for the Figure 6 / Table VII comparisons.

Every run is reproducible from the experiment seed.
"""

from __future__ import annotations

import logging
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

from ..faults import FaultInjector, FaultPlan
from ..labeling.manual import ManualChecker
from ..labeling.pipeline import GroundTruthLabeler, LabeledDataset
from ..ml.base import Classifier
from ..obs import LiveMonitor, RunReport, emit, profile
from ..obs.health import HealthEngine, HealthRule
from ..obs.ledger import RunLedger, RunRecord, stable_digest
from ..parallel import executor
from ..twittersim.api.rest import RestClient
from ..twittersim.config import SimulationConfig
from ..twittersim.population import build_population
from ..twittersim.sharded import build_engine
from .detector import ClassificationOutcome, PseudoHoneypotDetector
from .monitor import CapturedTweet
from .network import (
    ExposureLedger,
    PseudoHoneypotNetwork,
    RecoveryLedger,
)
from .portability import ActivityPolicy
from .selection import AttributeSelector, SelectionPlan

log = logging.getLogger("repro.core.experiment")


@dataclass
class NetworkRun:
    """Captures plus exposure accounting of one deployed network."""

    captures: list[CapturedTweet]
    exposure: ExposureLedger
    n_nodes_requested: int
    hours: int
    #: Degraded-mode accounting (reconnects, backfills, losses);
    #: None only for runs predating the resilience layer.
    recovery: RecoveryLedger | None = None

    @property
    def n_captures(self) -> int:
        return len(self.captures)


class PseudoHoneypotExperiment:
    """One synthetic world and the paper's experimental phases on it.

    Args:
        config: world configuration (population, rates, seeds).
        manual_error_rate: human-oracle flip probability for labeling.
        candidate_pool: selector candidate sample per hour.
        workers: process-pool size for the CPU-bound phases (labeling
            clustering and detector training); ``None`` defers to the
            ambient :func:`repro.parallel.resolve_workers` rule and 0
            forces sequential.  Outputs are identical at every worker
            count.
        fault_plan: optional chaos schedule; a
            :class:`repro.faults.FaultInjector` seeded from the
            experiment seed executes it against this world.  An empty
            plan (or None) leaves the run byte-identical to an
            uninstrumented one.
        health: SLO watchdog for the run.  ``True`` attaches a
            :class:`~repro.obs.health.HealthEngine` with the default
            rule pack; a sequence of
            :class:`~repro.obs.health.HealthRule` attaches a custom
            pack; ``False``/``None`` (default) attaches nothing.  The
            engine subscribes to the process-global event stream for
            the experiment's lifetime — call ``self.health.detach()``
            to release it early.  A clean (fault-free) run fires no
            alerts and keeps every report artifact byte-identical,
            attached or not.
    """

    def __init__(
        self,
        config: SimulationConfig | None = None,
        manual_error_rate: float = 0.02,
        candidate_pool: int = 6_000,
        workers: int | None = None,
        fault_plan: FaultPlan | None = None,
        health: "bool | Sequence[HealthRule] | None" = None,
    ) -> None:
        self.config = config or SimulationConfig.medium()
        self.population = build_population(self.config)
        self.engine = build_engine(self.population, workers=workers)
        self.fault_plan = fault_plan
        self.fault_injector: FaultInjector | None = None
        if fault_plan is not None:
            self.fault_injector = FaultInjector(
                fault_plan, seed=self.config.seed
            )
            self.engine.install_fault_injector(self.fault_injector)
        self.rest = RestClient(self.engine)
        # A 6-hour Active window: users post in multi-hour bursts, so a
        # recent post predicts the account is still in session — the
        # portability property's whole point (Section III-D).
        self.activity = ActivityPolicy(window_hours=6.0)
        self.candidate_pool = candidate_pool
        self.manual_error_rate = manual_error_rate
        self.workers = workers
        self.health: HealthEngine | None = None
        if health:
            self.health = HealthEngine(
                rules=None if health is True else health
            ).attach()

    def _parallel_scope(self):
        """An ``executor`` scope for this experiment's worker setting.

        With ``workers=None`` the ambient rule (active executor, then
        ``REPRO_WORKERS``) already governs every ``parallel_map``
        below, so no scope is opened; an explicit setting pins one
        shared pool for the phase.
        """
        if self.workers is None:
            return nullcontext()
        return executor(self.workers)

    # ------------------------------------------------------------------

    def make_selector(self, seed_offset: int = 0) -> AttributeSelector:
        """A fresh selector bound to this world."""
        return AttributeSelector(
            self.rest,
            candidate_pool=self.candidate_pool,
            activity=self.activity,
            seed=self.config.seed + seed_offset,
        )

    def warm_up(self, hours: int = 4) -> None:
        """Run unmonitored hours so trending and timelines populate."""
        log.info("phase warm_up: %d unmonitored hours", hours)
        with profile("experiment.warm_up", hours=hours):
            self.engine.run_hours(hours)

    def run_plan(
        self,
        plan: SelectionPlan,
        hours: int,
        switch_every_hours: int = 1,
        seed_offset: int = 0,
    ) -> NetworkRun:
        """Deploy a plan for ``hours`` monitored hours and collect."""
        with profile("experiment.run_plan", hours=hours) as span:
            network = PseudoHoneypotNetwork(
                self.engine,
                self.make_selector(seed_offset),
                plan,
                switch_every_hours=switch_every_hours,
            )
            network.deploy()
            network.run_hours(hours)
            network.shutdown()
            run = NetworkRun(
                captures=network.monitor.captured,
                exposure=network.exposure,
                n_nodes_requested=plan.total_requested,
                hours=hours,
                recovery=network.recovery,
            )
            span.set(
                captures=run.n_captures,
                node_hours=sum(run.exposure.by_attribute.values()),
                nodes_requested=plan.total_requested,
            )
            if network.recovery.degraded:
                # Only stamped on degraded runs, so fault-free report
                # artifacts stay byte-identical.
                span.set(
                    reconnects=network.recovery.reconnects,
                    backfilled=network.recovery.backfilled,
                    lost=network.recovery.lost,
                    deferred_switches=(
                        network.recovery.deferred_switches
                    ),
                )
        return run

    # -- paper phases ----------------------------------------------------

    def collect_ground_truth(
        self, hours: int, n_targets: int = 10, per_value: int = 10
    ) -> NetworkRun:
        """Phase 1: the random-attribute collection network (§V-C).

        Paper configuration: 100 nodes (10 random attributes x 10
        accounts), 300 hours.
        """
        log.info(
            "phase collect_ground_truth: %d hours, %d targets x %d accounts",
            hours,
            n_targets,
            per_value,
        )
        plan = SelectionPlan.random_plan(
            n_targets, per_value, seed=self.config.seed + 17
        )
        with profile("experiment.collect_ground_truth", hours=hours) as span:
            run = self.run_plan(plan, hours, seed_offset=17)
            span.set(
                captures=run.n_captures,
                node_hours=sum(run.exposure.by_attribute.values()),
            )
        return run

    def label_ground_truth(
        self, run: NetworkRun, unlabeled_audit_rate: float = 0.1
    ) -> LabeledDataset:
        """Phase 2: four-stage labeling of a collection run (Table III)."""
        log.info(
            "phase label_ground_truth: %d captured tweets", run.n_captures
        )
        checker = ManualChecker(
            self.population.truth,
            error_rate=self.manual_error_rate,
            seed=self.config.seed,
        )
        labeler = GroundTruthLabeler(
            self.rest,
            checker,
            unlabeled_audit_rate=unlabeled_audit_rate,
            minhash_seed=self.config.seed,
        )
        with profile("experiment.label_ground_truth") as span:
            with self._parallel_scope():
                dataset = labeler.label(
                    [capture.tweet for capture in run.captures]
                )
            span.set(
                n_tweets=dataset.n_tweets,
                n_spams=dataset.n_spams,
                n_users=dataset.n_users,
                n_spammers=dataset.n_spammers,
            )
        return dataset

    def train_detector(
        self,
        run: NetworkRun,
        dataset: LabeledDataset,
        classifier: Classifier | None = None,
    ) -> PseudoHoneypotDetector:
        """Phase 3: fit the detector on the labeled ground truth."""
        log.info(
            "phase train_detector: %d captures, %d labeled spams",
            run.n_captures,
            dataset.n_spams,
        )
        detector = PseudoHoneypotDetector(classifier=classifier)
        with profile("experiment.train_detector") as span:
            with self._parallel_scope():
                detector.fit_from_ground_truth(run.captures, dataset)
            span.set(
                n_training_tweets=dataset.n_tweets,
                n_training_spams=dataset.n_spams,
            )
        return detector

    def run_full_network(
        self, hours: int, per_value: int = 10
    ) -> NetworkRun:
        """Phase 4: the Table-I/II attribute sweep (2,400 nodes at
        ``per_value=10``)."""
        log.info(
            "phase run_full_network: %d hours at per_value=%d",
            hours,
            per_value,
        )
        with profile("experiment.run_full_network", hours=hours) as span:
            run = self.run_plan(
                SelectionPlan.full_paper_plan(per_value),
                hours,
                seed_offset=29,
            )
            span.set(
                captures=run.n_captures,
                node_hours=sum(run.exposure.by_attribute.values()),
            )
        return run

    def classify(
        self, detector: PseudoHoneypotDetector, run: NetworkRun
    ) -> ClassificationOutcome:
        """Phase 5: detector verdicts over a network run's captures."""
        log.info("phase classify: %d captures", run.n_captures)
        with profile("experiment.classify") as span:
            outcome = detector.classify(run.captures)
            span.set(
                captures=run.n_captures,
                n_spams=outcome.n_spams,
                n_spammers=outcome.n_spammers,
            )
            # The final PGE snapshot: now that verdicts exist, publish
            # the true Table-VI ranking over the same event channel the
            # hourly live estimates used.  Same payload as
            # ``pge_by_sample`` bit-for-bit, at any worker count.
            from .pge import pge_by_sample, ranking_payload

            emit(
                "pge.snapshot",
                kind="final",
                hour=self.engine.clock.hour,
                captures=run.n_captures,
                bands=ranking_payload(
                    pge_by_sample(outcome, run.exposure)
                ),
            )
        return outcome

    def run_plans_concurrently(
        self,
        plans: dict[str, SelectionPlan],
        hours: int,
        switch_every_hours: int = 1,
    ) -> dict[str, NetworkRun]:
        """Deploy several plans over the *same* platform hours.

        All networks observe identical traffic, making head-to-head
        comparisons (advanced pseudo-honeypot vs. non pseudo-honeypot,
        Figure 6) free of run-to-run variance in the world itself.
        """
        with profile(
            "experiment.run_plans_concurrently",
            hours=hours,
            n_plans=len(plans),
        ):
            networks = {}
            for offset, (name, plan) in enumerate(plans.items()):
                network = PseudoHoneypotNetwork(
                    self.engine,
                    self.make_selector(seed_offset=41 + offset),
                    plan,
                    switch_every_hours=switch_every_hours,
                )
                network.deploy()
                networks[name] = network
            return self.run_networks(networks, hours)

    def run_networks(
        self,
        networks: dict[str, "PseudoHoneypotNetwork"],
        hours: int,
    ) -> dict[str, NetworkRun]:
        """Drive already-deployed networks through shared hours."""
        log.info(
            "phase run_networks: %s over %d shared hours",
            "/".join(networks) or "-",
            hours,
        )
        with profile("experiment.run_networks", hours=hours) as span:
            for __ in range(hours):
                for network in networks.values():
                    network.prepare_hour()
                self.engine.run_hour()
                for network in networks.values():
                    network.finish_hour()
            runs = {}
            for name, network in networks.items():
                network.shutdown()
                runs[name] = NetworkRun(
                    captures=network.monitor.captured,
                    exposure=network.exposure,
                    n_nodes_requested=network.plan.total_requested,
                    hours=hours,
                    recovery=network.recovery,
                )
            span.set(
                captures=sum(run.n_captures for run in runs.values()),
                node_hours=sum(
                    sum(run.exposure.by_attribute.values())
                    for run in runs.values()
                ),
                captures_by_network={
                    name: run.n_captures for name, run in runs.items()
                },
            )
        return runs

    # -- reporting -------------------------------------------------------

    def live(self, out=None) -> LiveMonitor:
        """A console monitor tailing this process's event stream.

        Use as a context manager around any phase to watch captures
        per node-hour, selector fill rates, and label-stage deltas
        while the run is still in flight:

        .. code-block:: python

            with exp.live():
                exp.run_full_network(hours=24)
        """
        return LiveMonitor(out=out)

    def export_report(
        self,
        path: str | Path | None = None,
        ledger: RunLedger | None = None,
        runid: str | None = None,
        timestamp: str | None = None,
        **meta: object,
    ) -> RunReport:
        """Snapshot the global phase tree + metrics as a `RunReport`.

        The report's ``experiment.*`` span attributes reconcile exactly
        with the phase return values (``NetworkRun.n_captures``,
        ``LabeledDataset`` counts), making it the artifact perf PRs
        diff against.

        Args:
            path: if given, also write the report JSON there.
            ledger: if given, also distill the report into a
                :class:`~repro.obs.ledger.RunRecord` — stamped with
                this experiment's config digest, fault-plan digest,
                and worker setting, plus the health engine's incident
                list and ``totals.alerts_fired`` when ``health`` is
                attached — and append it there.
            runid: ledger record id; defaults to the report's.
            timestamp: caller-injected ``ts`` for the ledger record
                (this module never reads the wall clock).
            **meta: free-form metadata recorded in the report.

        Returns:
            The captured report.
        """
        meta.setdefault("seed", self.config.seed)
        meta.setdefault("engine_hours", self.engine.clock.hour)
        report = RunReport.capture(**meta)
        if path is not None:
            report.save(path)
            log.info("run report exported to %s", path)
        if ledger is not None:
            record_meta: dict[str, object] = {
                "config_digest": stable_digest(asdict(self.config)),
                "workers": self.workers,
            }
            if self.fault_plan is not None:
                record_meta["fault_plan_digest"] = stable_digest(
                    self.fault_plan.to_dict()
                )
            record = RunRecord.from_report(
                report,
                runid=runid or str(report.meta.get("runid", "run")),
                **record_meta,
            )
            if self.health is not None:
                record.incidents = self.health.incidents.to_payload()
                record.totals["alerts_fired"] = (
                    self.health.alerts_fired
                )
            ledger.append(record, timestamp=timestamp)
            log.info("run record appended to %s", ledger.path)
        return report
