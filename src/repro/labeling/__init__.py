"""Ground-truth labeling: suspension, clustering, rules, manual oracle."""

from .dhash import dhash, dhash_many, group_by_dhash, hamming_distance
from .manual import ManualChecker
from .minhash import MinHasher, group_by_signature, stable_hash64
from .neardup import group_near_duplicates
from .pipeline import (
    METHODS,
    GroundTruthLabeler,
    LabeledDataset,
    MethodCounts,
)
from .rules import (
    SPAM_RULES,
    StreamContext,
    is_rule_spam,
    is_seed_account,
    matching_rules,
    symbol_affiliation_spam,
)
from .screenname import group_by_pattern, pattern_key, sigma_sequence
from .suspended import find_suspended

__all__ = [
    "GroundTruthLabeler",
    "LabeledDataset",
    "METHODS",
    "ManualChecker",
    "MethodCounts",
    "MinHasher",
    "SPAM_RULES",
    "StreamContext",
    "dhash",
    "dhash_many",
    "find_suspended",
    "group_by_dhash",
    "group_by_pattern",
    "group_by_signature",
    "group_near_duplicates",
    "hamming_distance",
    "is_rule_spam",
    "is_seed_account",
    "matching_rules",
    "pattern_key",
    "sigma_sequence",
    "stable_hash64",
    "symbol_affiliation_spam",
]
