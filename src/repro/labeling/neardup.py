"""Near-duplicate tweet detection in daily windows (Section IV-B).

The paper checks near-duplicated tweets inside 1-day time windows,
skipping contents shorter than 20 characters.  Texts are normalized
(mentions and URLs stripped — campaigns rotate both per blast) and
grouped by MinHash signature within each window.
"""

from __future__ import annotations

from ..features.content import normalize_text_for_dedup
from ..twittersim.clock import SECONDS_PER_DAY
from ..twittersim.entities import Tweet
from .minhash import (
    DEFAULT_BANDS,
    MinHasher,
    _distinct_signatures,
    group_signatures_banded,
)

#: Minimum raw content length considered (paper: 20 characters).
MIN_CONTENT_LENGTH = 20


def group_near_duplicates(
    tweets: list[Tweet],
    hasher: MinHasher | None = None,
    window_s: float = SECONDS_PER_DAY,
    workers: int | None = None,
    threshold: float = 1.0,
    n_bands: int = DEFAULT_BANDS,
) -> list[list[int]]:
    """Group indices of near-duplicate tweets per 1-day window.

    Normalization and windowing run in the parent (cheap, and the
    ``Tweet`` objects stay out of the pickle stream); the MinHash
    signatures — the hot loop — run once per distinct normalized text
    and fan out over ``workers`` pool processes (0 = sequential;
    ``None`` defers to the ambient
    :func:`repro.parallel.resolve_workers` rule).  Candidate pairs
    come from LSH band buckets scoped to the day window
    (:func:`repro.labeling.minhash.group_signatures_banded`) instead
    of an all-pairs scan; at the default ``threshold=1.0`` the groups
    are bit-identical to exact-signature bucketing, at any worker
    count.

    Returns:
        Groups of indices into ``tweets``, each of size >= 2; a group
        never spans two windows.
    """
    hasher = hasher or MinHasher()
    eligible: list[tuple[int, int, str]] = []
    for idx, tweet in enumerate(tweets):
        if len(tweet.text) < MIN_CONTENT_LENGTH:
            continue
        normalized = normalize_text_for_dedup(tweet.text)
        if len(normalized) < 3:
            continue
        window = int(tweet.created_at // window_s)
        eligible.append((idx, window, normalized))
    signatures = _distinct_signatures(
        [normalized for __, __, normalized in eligible],
        hasher,
        workers,
        "neardup",
    )
    groups = group_signatures_banded(
        signatures,
        scopes=[window for __, window, __ in eligible],
        threshold=threshold,
        n_bands=n_bands,
    )
    return [[eligible[i][0] for i in members] for members in groups]
