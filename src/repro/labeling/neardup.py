"""Near-duplicate tweet detection in daily windows (Section IV-B).

The paper checks near-duplicated tweets inside 1-day time windows,
skipping contents shorter than 20 characters.  Texts are normalized
(mentions and URLs stripped — campaigns rotate both per blast) and
grouped by MinHash signature within each window.
"""

from __future__ import annotations

from collections import defaultdict

from ..features.content import normalize_text_for_dedup
from ..parallel import parallel_map
from ..twittersim.clock import SECONDS_PER_DAY
from ..twittersim.entities import Tweet
from .minhash import MinHasher

#: Minimum raw content length considered (paper: 20 characters).
MIN_CONTENT_LENGTH = 20


def group_near_duplicates(
    tweets: list[Tweet],
    hasher: MinHasher | None = None,
    window_s: float = SECONDS_PER_DAY,
    workers: int | None = None,
) -> list[list[int]]:
    """Group indices of near-duplicate tweets per 1-day window.

    Normalization and windowing run in the parent (cheap, and the
    ``Tweet`` objects stay out of the pickle stream); the MinHash
    signatures — the hot loop — fan out over ``workers`` pool
    processes (0 = sequential; ``None`` defers to the ambient
    :func:`repro.parallel.resolve_workers` rule).  Bucketing walks
    indices in input order, so groups are identical at every worker
    count.

    Returns:
        Groups of indices into ``tweets``, each of size >= 2; a group
        never spans two windows.
    """
    hasher = hasher or MinHasher()
    eligible: list[tuple[int, int, str]] = []
    for idx, tweet in enumerate(tweets):
        if len(tweet.text) < MIN_CONTENT_LENGTH:
            continue
        normalized = normalize_text_for_dedup(tweet.text)
        if len(normalized) < 3:
            continue
        window = int(tweet.created_at // window_s)
        eligible.append((idx, window, normalized))
    signatures = parallel_map(
        hasher.signature,
        [normalized for __, __, normalized in eligible],
        workers=workers,
        label="neardup",
    )
    buckets: dict[tuple[int, tuple[int, ...]], list[int]] = defaultdict(list)
    for (idx, window, __), signature in zip(eligible, signatures):
        buckets[(window, signature)].append(idx)
    return [members for members in buckets.values() if len(members) >= 2]
