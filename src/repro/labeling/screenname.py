"""Screen-name Σ-sequence pattern clustering (Section IV-B).

Spam campaigns register accounts automatically, producing screen names
with limited structural variability.  Each name is mapped onto a
sequence over the character classes Σ = {p{Lu}, p{Ll}, p{N}, p{P}}
(uppercase, lowercase, numeric, punctuation) with run lengths, and —
borrowing the merchant-pattern refinement of Thomas et al. — grouped
by (Σ-sequence, literal prefix).  Groups of five or more members are
retained, per the paper.
"""

from __future__ import annotations

from collections import defaultdict

#: Minimum group size the paper keeps.
MIN_GROUP_SIZE = 5

#: Length of the shared literal prefix required inside a group.
PREFIX_LENGTH = 4


def char_class(ch: str) -> str:
    """Σ class of one character: Lu, Ll, N, or P."""
    if ch.isupper():
        return "Lu"
    if ch.islower():
        return "Ll"
    if ch.isdigit():
        return "N"
    return "P"


def sigma_sequence(name: str) -> str:
    """Run-length-encoded Σ-sequence of a screen name.

    Example: ``promoa12345`` -> ``Ll6N5``.
    """
    if not name:
        return ""
    parts: list[str] = []
    current = char_class(name[0])
    run = 1
    for ch in name[1:]:
        cls = char_class(ch)
        if cls == current:
            run += 1
        else:
            parts.append(f"{current}{run}")
            current = cls
            run = 1
    parts.append(f"{current}{run}")
    return "".join(parts)


def pattern_key(name: str) -> tuple[str, str]:
    """Grouping key: (Σ-sequence, lowercase literal prefix)."""
    return sigma_sequence(name), name[:PREFIX_LENGTH].lower()


def group_by_pattern(
    names: list[str], min_group_size: int = MIN_GROUP_SIZE
) -> list[list[int]]:
    """Group indices of names sharing a registration pattern.

    Returns:
        Groups of indices with at least ``min_group_size`` members.
    """
    buckets: dict[tuple[str, str], list[int]] = defaultdict(list)
    for idx, name in enumerate(names):
        buckets[pattern_key(name)].append(idx)
    return [
        members
        for members in buckets.values()
        if len(members) >= min_group_size
    ]
