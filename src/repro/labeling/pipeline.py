"""Ground-truth labeling pipeline (Section IV-B, Table III).

Order of stages, as in the paper:

1. **Suspended accounts** — authors that no longer resolve through the
   REST API are candidate spammers; their tweets candidate spam.
2. **Clustering** — group users by profile-image dHash, screen-name
   Σ-pattern, and description MinHash; group tweets by near-duplicate
   content in daily windows.  Labels propagate: a suspended user in a
   user-group marks the whole group; a spam tweet in a tweet-group
   marks the whole group and its authors.
3. **Rule-based** — the 11 spam conditions, the seed-account (verified)
   non-spam whitelist, and the affiliation-symbol rule label what the
   first two stages missed.
4. **Manual checking** — the (noisy-oracle) human pass audits every
   rough label and a sample of the unlabeled remainder.

The pipeline records which stage produced each label, yielding the
Table III accounting.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..obs import get_event_stream, get_registry, trace
from ..twittersim.api.rest import RestClient
from ..twittersim.entities import Tweet
from ..twittersim.images import DEFAULT_IMAGE_ID
from .dhash import dhash_many, group_by_dhash
from .manual import ManualChecker
from .minhash import MinHasher, group_by_signature
from .neardup import group_near_duplicates
from .rules import (
    StreamContext,
    is_rule_spam,
    is_seed_account,
    symbol_affiliation_spam,
)
from .screenname import group_by_pattern
from .suspended import find_suspended

#: Stage names in Table III row order.
METHODS = ("suspended", "clustering", "rule_based", "human")

log = logging.getLogger("repro.labeling.pipeline")


@dataclass
class MethodCounts:
    """One Table-III row: what a stage newly labeled."""

    spams: int = 0
    spammers: int = 0

    def as_row(self, n_tweets: int, n_users: int) -> tuple[int, float, int, float]:
        """(#spams, %tweets, #spammers, %users)."""
        return (
            self.spams,
            100.0 * self.spams / max(n_tweets, 1),
            self.spammers,
            100.0 * self.spammers / max(n_users, 1),
        )


@dataclass
class LabeledDataset:
    """Final ground-truth dataset with per-stage accounting."""

    tweets: list[Tweet]
    tweet_labels: np.ndarray
    user_labels: dict[int, int]
    tweet_method: dict[int, str]
    user_method: dict[int, str]
    method_counts: dict[str, MethodCounts]

    @property
    def n_tweets(self) -> int:
        return len(self.tweets)

    @property
    def n_users(self) -> int:
        return len(self.user_labels)

    @property
    def n_spams(self) -> int:
        return int(self.tweet_labels.sum())

    @property
    def n_spammers(self) -> int:
        return sum(self.user_labels.values())

    def spam_fraction(self) -> float:
        """Fraction of tweets labeled spam."""
        return self.n_spams / max(self.n_tweets, 1)

    def spammer_fraction(self) -> float:
        """Fraction of involved users labeled spammer."""
        return self.n_spammers / max(self.n_users, 1)

    def table_rows(self) -> list[tuple[str, int, float, int, float]]:
        """Table III rows: (method, #spams, %tweets, #spammers, %users)."""
        return [
            (method, *self.method_counts[method].as_row(self.n_tweets, self.n_users))
            for method in METHODS
        ]


class GroundTruthLabeler:
    """Runs the four-stage labeling pipeline over captured tweets.

    Args:
        rest: REST client for suspension checks and avatar downloads.
        checker: the manual-checking oracle.
        unlabeled_audit_rate: fraction of never-labeled tweets the
            human pass samples (auditing all 100% is the paper's
            two-week effort; sampling models a bounded budget).
        minhash_seed: seed for the MinHash hash family.
        workers: process-pool size for the clustering stages (dHash,
            description MinHash, near-duplicate windows); 0 forces
            sequential, ``None`` defers to the ambient
            :func:`repro.parallel.resolve_workers` rule.  Groups are
            identical at every worker count.
    """

    def __init__(
        self,
        rest: RestClient,
        checker: ManualChecker,
        unlabeled_audit_rate: float = 0.1,
        minhash_seed: int = 0,
        enable_suspended: bool = True,
        enable_clustering: bool = True,
        enable_rules: bool = True,
        enable_manual: bool = True,
        workers: int | None = None,
    ) -> None:
        if not 0 <= unlabeled_audit_rate <= 1:
            raise ValueError("unlabeled_audit_rate must be in [0, 1]")
        self.rest = rest
        self.checker = checker
        self.unlabeled_audit_rate = unlabeled_audit_rate
        self.hasher = MinHasher(seed=minhash_seed)
        self.workers = workers
        # Stage toggles for ablation studies: each disables exactly one
        # labeling method, leaving the rest of the pipeline intact.
        self.enable_suspended = enable_suspended
        self.enable_clustering = enable_clustering
        self.enable_rules = enable_rules
        self.enable_manual = enable_manual

    # ------------------------------------------------------------------

    def label(self, tweets: list[Tweet]) -> LabeledDataset:
        """Label a captured tweet set; returns the ground-truth dataset.

        Raises:
            ValueError: on an empty capture.
        """
        if not tweets:
            raise ValueError("cannot label an empty tweet set")
        tweets = sorted(tweets, key=lambda t: t.created_at)
        authors = [t.user.user_id for t in tweets]
        unique_users = list(dict.fromkeys(authors))
        profile_of = {t.user.user_id: t.user for t in tweets}
        tweets_of_user: dict[int, list[int]] = defaultdict(list)
        for i, uid in enumerate(authors):
            tweets_of_user[uid].append(i)

        spam_user: dict[int, str] = {}
        spam_tweet: dict[int, str] = {}
        nonspam_tweet: set[int] = set()

        def mark_user(uid: int, method: str) -> None:
            if uid not in spam_user:
                spam_user[uid] = method
                for i in tweets_of_user[uid]:
                    if i not in spam_tweet:
                        spam_tweet[i] = method

        registry = get_registry()
        events = get_event_stream()

        def stage_span(span, stage: str, before: tuple[int, int]) -> None:
            """Annotate a finished stage with its newly-labeled deltas."""
            new_spams = len(spam_tweet) - before[0]
            new_spammers = len(spam_user) - before[1]
            span.set(
                new_spams=new_spams,
                new_spammers=new_spammers,
                total_spams=len(spam_tweet),
                total_spammers=len(spam_user),
            )
            registry.counter(f"label.{stage}.spams").inc(max(new_spams, 0))
            registry.counter(f"label.{stage}.spammers").inc(
                max(new_spammers, 0)
            )
            events.emit(
                "label.stage",
                stage=stage,
                new_spams=new_spams,
                new_spammers=new_spammers,
                total_spams=len(spam_tweet),
                total_spammers=len(spam_user),
            )
            log.info(
                "labeling stage %s: %+d spams, %+d spammers",
                stage,
                new_spams,
                new_spammers,
            )

        # -- Stage 1: suspended accounts --------------------------------
        if self.enable_suspended:
            with trace("label.suspended") as span:
                before = (len(spam_tweet), len(spam_user))
                for uid in sorted(find_suspended(self.rest, unique_users)):
                    mark_user(uid, "suspended")
                stage_span(span, "suspended", before)

        # -- Stage 2: clustering -----------------------------------------
        if self.enable_clustering:
            with trace("label.clustering") as span:
                before = (len(spam_tweet), len(spam_user))
                user_groups = self._user_groups(unique_users, profile_of)
                with trace("label.neardup") as ndspan:
                    tweet_groups = group_near_duplicates(
                        tweets, self.hasher, workers=self.workers
                    )
                    ndspan.set(groups=len(tweet_groups))
                self._propagate(
                    tweets, unique_users, user_groups, tweet_groups,
                    tweets_of_user, spam_user, spam_tweet, mark_user,
                )
                stage_span(span, "clustering", before)

        # -- Stage 3: rule-based -----------------------------------------
        name_groups = group_by_pattern(
            [profile_of[uid].screen_name for uid in unique_users]
        )
        name_groups_tweets = [
            [i for uid_idx in group for i in tweets_of_user[unique_users[uid_idx]]]
            for group in name_groups
        ]
        symbol_spam = symbol_affiliation_spam(tweets, name_groups_tweets)
        if self.enable_rules:
            with trace("label.rule_based") as span:
                before = (len(spam_tweet), len(spam_user))
                ctx = StreamContext()
                for i, tweet in enumerate(tweets):
                    already = i in spam_tweet
                    if not already:
                        if is_seed_account(tweet):
                            nonspam_tweet.add(i)
                        elif is_rule_spam(tweet, ctx) or i in symbol_spam:
                            spam_tweet[i] = "rule_based"
                            if tweet.user.user_id not in spam_user:
                                spam_user[tweet.user.user_id] = "rule_based"
                    ctx.observe(tweet)
                stage_span(span, "rule_based", before)

        # -- Stage 4: manual checking ------------------------------------
        if self.enable_manual:
            with trace("label.manual") as span:
                before = (len(spam_tweet), len(spam_user))
                self._manual_pass(
                    tweets, unique_users, spam_user, spam_tweet
                )
                stage_span(span, "manual", before)

        registry.counter("label.tweets_labeled").inc(len(tweets))
        return self._assemble(
            tweets, unique_users, spam_user, spam_tweet
        )

    # ------------------------------------------------------------------

    def _user_groups(
        self, unique_users: list[int], profile_of: dict
    ) -> list[list[int]]:
        """All clustering-stage user groups, as lists of user ids."""
        groups: list[list[int]] = []
        # Profile-image dHash (default avatars excluded: the shared
        # platform egg is not campaign evidence).
        with trace("label.dhash") as span:
            image_users = [
                uid
                for uid in unique_users
                if profile_of[uid].profile_image_id != DEFAULT_IMAGE_ID
            ]
            # Avatars are fetched in the parent (the REST client wraps
            # the live engine, which must not cross a process fork);
            # only the pure hash computation fans out.
            images = [
                self.rest.get_profile_image(
                    profile_of[uid].profile_image_id
                )
                for uid in image_users
            ]
            hashes = dhash_many(images, workers=self.workers)
            for group in group_by_dhash(hashes):
                groups.append([image_users[i] for i in group])
            span.set(hashed=len(image_users), groups=len(groups))
        # Screen-name patterns.
        with trace("label.screenname") as span:
            n_before = len(groups)
            for group in group_by_pattern(
                [profile_of[uid].screen_name for uid in unique_users]
            ):
                groups.append([unique_users[i] for i in group])
            span.set(groups=len(groups) - n_before)
        # Description MinHash.
        with trace("label.minhash") as span:
            n_before = len(groups)
            for group in group_by_signature(
                [profile_of[uid].description for uid in unique_users],
                self.hasher,
                workers=self.workers,
            ):
                groups.append([unique_users[i] for i in group])
            span.set(groups=len(groups) - n_before)
        return groups

    def _propagate(
        self,
        tweets: list[Tweet],
        unique_users: list[int],
        user_groups: list[list[int]],
        tweet_groups: list[list[int]],
        tweets_of_user: dict[int, list[int]],
        spam_user: dict[int, str],
        spam_tweet: dict[int, str],
        mark_user,
    ) -> None:
        """Fixpoint label propagation across user and tweet groups."""
        for __ in range(4):  # small bound; usually converges in 2
            changed = False
            for group in user_groups:
                if any(uid in spam_user for uid in group):
                    for uid in group:
                        if uid not in spam_user:
                            mark_user(uid, "clustering")
                            changed = True
            for group in tweet_groups:
                group_is_spam = any(
                    i in spam_tweet
                    or tweets[i].user.user_id in spam_user
                    for i in group
                )
                if group_is_spam:
                    for i in group:
                        if i not in spam_tweet:
                            spam_tweet[i] = "clustering"
                            changed = True
                        uid = tweets[i].user.user_id
                        if uid not in spam_user:
                            mark_user(uid, "clustering")
                            changed = True
            if not changed:
                break

    def _manual_pass(
        self,
        tweets: list[Tweet],
        unique_users: list[int],
        spam_user: dict[int, str],
        spam_tweet: dict[int, str],
    ) -> None:
        """Audit rough labels; sample the unlabeled remainder."""
        # Audit labeled tweets: drop rejected labels.
        for i in list(spam_tweet):
            if not self.checker.check_tweet(tweets[i].tweet_id):
                del spam_tweet[i]
        for uid in list(spam_user):
            if not self.checker.check_user(uid):
                del spam_user[uid]
        # Sample the unlabeled remainder for missed spam.
        rng = np.random.default_rng(self.checker.seed + 1)
        for i, tweet in enumerate(tweets):
            if i in spam_tweet:
                continue
            if rng.random() >= self.unlabeled_audit_rate:
                continue
            if self.checker.check_tweet(tweet.tweet_id):
                spam_tweet[i] = "human"
                if tweet.user.user_id not in spam_user:
                    spam_user[tweet.user.user_id] = "human"

    def _assemble(
        self,
        tweets: list[Tweet],
        unique_users: list[int],
        spam_user: dict[int, str],
        spam_tweet: dict[int, str],
    ) -> LabeledDataset:
        labels = np.zeros(len(tweets), dtype=np.int64)
        tweet_method: dict[int, str] = {}
        counts = {method: MethodCounts() for method in METHODS}
        for i, method in spam_tweet.items():
            labels[i] = 1
            tweet_method[tweets[i].tweet_id] = method
            counts[method].spams += 1
        user_labels = {uid: 0 for uid in unique_users}
        for uid, method in spam_user.items():
            if uid in user_labels:
                user_labels[uid] = 1
                counts[method].spammers += 1
        return LabeledDataset(
            tweets=tweets,
            tweet_labels=labels,
            user_labels=user_labels,
            tweet_method=tweet_method,
            user_method=dict(spam_user),
            method_counts=counts,
        )
