"""Difference-hash (dHash) profile-image fingerprinting (Section IV-B).

Following the paper: the image is reduced to 9x9 grayscale, adjacent
pixels are compared horizontally and vertically (8x8 bits each), and
the two 64-bit values are concatenated into a 128-bit hash.  Two images
belong to the same group when the Hamming distance of their hashes is
below a threshold (paper: 5).

Pairwise comparison over all captured avatars would be O(n²); grouping
uses the pigeonhole trick instead: a 128-bit hash is cut into
``threshold + 1`` segments, and any two hashes within the threshold
must agree on at least one whole segment, so candidate pairs are found
by bucketing on segments and verified exactly.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..parallel import parallel_map

#: Paper's grouping threshold on Hamming distance.
DEFAULT_THRESHOLD = 5

_HASH_BITS = 128


def _resize_grayscale(image: np.ndarray, size: int = 9) -> np.ndarray:
    """Block-average an image down to (size, size) float64."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 3:
        image = image.mean(axis=2)
    h, w = image.shape
    if h < size or w < size:
        raise ValueError(f"image {image.shape} smaller than {size}x{size}")
    row_edges = np.linspace(0, h, size + 1).astype(int)
    col_edges = np.linspace(0, w, size + 1).astype(int)
    out = np.empty((size, size))
    for i in range(size):
        for j in range(size):
            block = image[
                row_edges[i] : row_edges[i + 1],
                col_edges[j] : col_edges[j + 1],
            ]
            out[i, j] = block.mean()
    return out


def dhash(image: np.ndarray) -> int:
    """128-bit difference hash of an image.

    The horizontal pass compares each of the 8x8 left/right neighbor
    pairs of the 9x9 reduction; the vertical pass compares top/bottom
    pairs; bits are concatenated horizontal-first.
    """
    small = _resize_grayscale(image, 9)
    horizontal = (small[:8, :8] > small[:8, 1:9]).flatten()
    vertical = (small[:8, :8] > small[1:9, :8]).flatten()
    bits = np.concatenate([horizontal, vertical])
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def dhash_many(
    images: list[np.ndarray], workers: int | None = None
) -> list[int]:
    """dHash of every image, in order.

    The per-image 9x9 block reduction is a pure Python double loop —
    the labeling pipeline's dominant per-avatar cost — so it fans out
    over ``workers`` pool processes (0 = sequential; ``None`` defers
    to the ambient :func:`repro.parallel.resolve_workers` rule).
    Results are positionally identical at every worker count.
    """
    return parallel_map(dhash, images, workers=workers, label="dhash")


def hamming_distance(hash_a: int, hash_b: int) -> int:
    """Number of differing bits between two hashes."""
    return (hash_a ^ hash_b).bit_count()


def _segments(value: int, n_segments: int) -> list[tuple[int, int]]:
    """Split a 128-bit value into (segment_index, segment_bits) keys."""
    seg_bits = _HASH_BITS // n_segments
    mask = (1 << seg_bits) - 1
    return [
        (i, (value >> (i * seg_bits)) & mask) for i in range(n_segments)
    ]


class _UnionFind:
    """Disjoint-set forest with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def group_by_dhash(
    hashes: list[int], threshold: int = DEFAULT_THRESHOLD
) -> list[list[int]]:
    """Group hash indices whose pairwise Hamming distance <= threshold.

    Grouping is transitive (single-linkage through the union-find), as
    in campaign detection: A~B and B~C put A, C in one campaign even if
    A and C differ by slightly more than the threshold.

    Returns:
        Groups of *indices into the input list*, each of size >= 2.
    """
    n_segments = threshold + 1
    if _HASH_BITS % n_segments:
        # Round up to a divisor of 128 so segments are equal-sized.
        while _HASH_BITS % n_segments:
            n_segments += 1
    buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
    for idx, value in enumerate(hashes):
        for key in _segments(value, n_segments):
            buckets[key].append(idx)
    uf = _UnionFind(len(hashes))
    for members in buckets.values():
        if len(members) < 2:
            continue
        anchor = members[0]
        for other in members[1:]:
            if hamming_distance(hashes[anchor], hashes[other]) <= threshold:
                uf.union(anchor, other)
            else:
                # The anchor may not match, but another member might;
                # fall back to pairwise checks within the bucket only
                # when the bucket is small enough to stay near-linear.
                for third in members:
                    if third is other:
                        break
                    if (
                        hamming_distance(hashes[third], hashes[other])
                        <= threshold
                    ):
                        uf.union(third, other)
                        break
    groups: dict[int, list[int]] = defaultdict(list)
    for idx in range(len(hashes)):
        groups[uf.find(idx)].append(idx)
    return [members for members in groups.values() if len(members) >= 2]
