"""Suspended-account labeling (Section IV-B).

Twitter suspends accounts violating its rules; the flagged accounts
seed the ground-truth labels.  The checker batches account ids through
the REST ``users/lookup`` endpoint — exactly how bulk suspension
checks are done against the real platform: ids missing from the
response are suspended (or deleted).

A suspended account is *not necessarily* a spammer (the paper notes
this; its manual checking filters survivors), so downstream stages
treat these as candidate labels.
"""

from __future__ import annotations

from ..twittersim.api.rest import RestClient


def find_suspended(rest: RestClient, user_ids: list[int]) -> set[int]:
    """Ids from ``user_ids`` that no longer resolve (suspended).

    Ids are deduplicated and checked in ``users/lookup`` batches.
    """
    unique = list(dict.fromkeys(user_ids))
    suspended: set[int] = set()
    batch_size = RestClient.LOOKUP_BATCH
    for start in range(0, len(unique), batch_size):
        batch = unique[start : start + batch_size]
        alive = {profile.user_id for profile in rest.lookup_users(batch)}
        suspended.update(uid for uid in batch if uid not in alive)
    return suspended
