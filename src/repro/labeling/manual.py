"""Manual-checking oracle (substitution for the paper's human pass).

The paper spends two weeks manually refining the roughly-labeled data
into a reliable ground truth.  We substitute a *noisy oracle*: it
consults the simulator's hidden truth but errs with a configurable
rate, modeling human annotator imperfection.  Deterministic per
(seed, item id) so repeated audits of the same item agree, as a human
annotator pool with a fixed assignment would.
"""

from __future__ import annotations

import numpy as np

from ..twittersim.population import GroundTruth


class ManualChecker:
    """Noisy human-annotator stand-in backed by simulator truth.

    Args:
        truth: the simulator's ground truth.
        error_rate: probability an individual verdict is flipped.
        seed: determinism seed.
    """

    def __init__(
        self, truth: GroundTruth, error_rate: float = 0.02, seed: int = 0
    ) -> None:
        if not 0 <= error_rate < 0.5:
            raise ValueError("error_rate must be in [0, 0.5)")
        self.truth = truth
        self.error_rate = error_rate
        self.seed = seed
        self.verdicts_issued = 0

    def _noisy(self, actual: bool, item_id: int) -> bool:
        self.verdicts_issued += 1
        rng = np.random.default_rng((self.seed << 32) ^ item_id)
        if rng.random() < self.error_rate:
            return not actual
        return actual

    def check_tweet(self, tweet_id: int) -> bool:
        """Human verdict: is this tweet spam?"""
        return self._noisy(self.truth.is_spam_tweet(tweet_id), tweet_id)

    def check_user(self, user_id: int) -> bool:
        """Human verdict: is this account a spammer?"""
        return self._noisy(self.truth.is_spammer(user_id), user_id ^ 0xA5A5)
