"""MinHash over tri-gram shingles for near-duplicate text (Section IV-B).

User descriptions (and tweet bodies, for the near-duplicate tweet
check) are normalized, cut into character tri-gram shingles, and
hashed by k universal hash functions; the signature is the vector of
per-function minima.  Following the paper, two texts are considered
identical when their signatures agree, so grouping is a dictionary
bucket on the signature tuple.

Shingles are hashed with :func:`stable_hash64`, not builtin
``hash()``: the builtin is salted per process (``PYTHONHASHSEED``),
so its signatures would disagree across pool workers and across
reruns — exactly the nondeterminism lint rule RPL005 bans.
"""

from __future__ import annotations

from collections import defaultdict
from hashlib import blake2b

import numpy as np

from ..features.textstats import strip_for_shingling
from ..parallel import parallel_map

_MERSENNE_PRIME = (1 << 61) - 1


def stable_hash64(text: str) -> int:
    """Process-stable 63-bit hash of a text (blake2b-derived).

    Identical across interpreter runs, ``PYTHONHASHSEED`` values, and
    pool workers — the property builtin ``hash()`` deliberately lacks.
    The top bit is masked off so values fit ``np.int64``.
    """
    digest = blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFFFFFFFFFFFFFF


class MinHasher:
    """k-function MinHash signatures over character tri-grams.

    Args:
        n_hashes: signature length k (more = stricter identity).
        shingle_size: character n-gram size (paper: tri-grams).
        seed: seeds the universal hash coefficients.
    """

    def __init__(
        self, n_hashes: int = 16, shingle_size: int = 3, seed: int = 0
    ) -> None:
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        if shingle_size < 1:
            raise ValueError("shingle_size must be >= 1")
        self.n_hashes = n_hashes
        self.shingle_size = shingle_size
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)

    def shingles(self, text: str) -> set[int]:
        """Hashed character shingles of a normalized text."""
        normalized = strip_for_shingling(text)
        k = self.shingle_size
        if len(normalized) < k:
            return {stable_hash64(normalized)}
        return {
            stable_hash64(normalized[i : i + k])
            for i in range(len(normalized) - k + 1)
        }

    def signature(self, text: str) -> tuple[int, ...]:
        """MinHash signature of a text."""
        shingles = np.fromiter(
            sorted(self.shingles(text)), dtype=np.int64
        )
        # (k, s) universal hashes; min over shingles per function.
        hashed = (
            self._a[:, None] * shingles[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        return tuple(int(v) for v in hashed.min(axis=1))

    def similarity(self, text_a: str, text_b: str) -> float:
        """Estimated Jaccard similarity: fraction of agreeing minima."""
        sig_a = self.signature(text_a)
        sig_b = self.signature(text_b)
        agree = sum(a == b for a, b in zip(sig_a, sig_b))
        return agree / self.n_hashes


def group_by_signature(
    texts: list[str],
    hasher: MinHasher | None = None,
    workers: int | None = None,
) -> list[list[int]]:
    """Group indices of texts with identical MinHash signatures.

    Empty (post-normalization) texts are never grouped: a blank bio is
    not evidence of affiliation.

    Signature computation — the O(text length x k) hot loop — fans out
    over ``workers`` pool processes (0 = sequential; ``None`` defers
    to the ambient :func:`repro.parallel.resolve_workers` rule).
    Bucketing stays in the parent and walks indices in input order, so
    groups are identical at every worker count.

    Returns:
        Groups of indices, each of size >= 2.
    """
    hasher = hasher or MinHasher()
    eligible = [
        (idx, text)
        for idx, text in enumerate(texts)
        if strip_for_shingling(text)
    ]
    signatures = parallel_map(
        hasher.signature,
        [text for __, text in eligible],
        workers=workers,
        label="minhash",
    )
    buckets: dict[tuple[int, ...], list[int]] = defaultdict(list)
    for (idx, __), signature in zip(eligible, signatures):
        buckets[signature].append(idx)
    return [members for members in buckets.values() if len(members) >= 2]
