"""MinHash over tri-gram shingles for near-duplicate text (Section IV-B).

User descriptions (and tweet bodies, for the near-duplicate tweet
check) are normalized, cut into character tri-gram shingles, and
hashed by k universal hash functions; the signature is the vector of
per-function minima.  Following the paper, two texts are considered
identical when their signatures agree, so grouping is a dictionary
bucket on the signature tuple.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..features.textstats import strip_for_shingling

_MERSENNE_PRIME = (1 << 61) - 1


class MinHasher:
    """k-function MinHash signatures over character tri-grams.

    Args:
        n_hashes: signature length k (more = stricter identity).
        shingle_size: character n-gram size (paper: tri-grams).
        seed: seeds the universal hash coefficients.
    """

    def __init__(
        self, n_hashes: int = 16, shingle_size: int = 3, seed: int = 0
    ) -> None:
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        if shingle_size < 1:
            raise ValueError("shingle_size must be >= 1")
        self.n_hashes = n_hashes
        self.shingle_size = shingle_size
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)

    def shingles(self, text: str) -> set[int]:
        """Hashed character shingles of a normalized text."""
        normalized = strip_for_shingling(text)
        k = self.shingle_size
        if len(normalized) < k:
            return {hash(normalized) & 0x7FFFFFFFFFFFFFFF}
        return {
            hash(normalized[i : i + k]) & 0x7FFFFFFFFFFFFFFF
            for i in range(len(normalized) - k + 1)
        }

    def signature(self, text: str) -> tuple[int, ...]:
        """MinHash signature of a text."""
        shingles = np.fromiter(
            self.shingles(text), dtype=np.int64
        )
        # (k, s) universal hashes; min over shingles per function.
        hashed = (
            self._a[:, None] * shingles[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        return tuple(int(v) for v in hashed.min(axis=1))

    def similarity(self, text_a: str, text_b: str) -> float:
        """Estimated Jaccard similarity: fraction of agreeing minima."""
        sig_a = self.signature(text_a)
        sig_b = self.signature(text_b)
        agree = sum(a == b for a, b in zip(sig_a, sig_b))
        return agree / self.n_hashes


def group_by_signature(
    texts: list[str], hasher: MinHasher | None = None
) -> list[list[int]]:
    """Group indices of texts with identical MinHash signatures.

    Empty (post-normalization) texts are never grouped: a blank bio is
    not evidence of affiliation.

    Returns:
        Groups of indices, each of size >= 2.
    """
    hasher = hasher or MinHasher()
    buckets: dict[tuple[int, ...], list[int]] = defaultdict(list)
    for idx, text in enumerate(texts):
        if not strip_for_shingling(text):
            continue
        buckets[hasher.signature(text)].append(idx)
    return [members for members in buckets.values() if len(members) >= 2]
