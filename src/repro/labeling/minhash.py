"""MinHash over tri-gram shingles for near-duplicate text (Section IV-B).

User descriptions (and tweet bodies, for the near-duplicate tweet
check) are normalized, cut into character tri-gram shingles, and
hashed by k universal hash functions; the signature is the vector of
per-function minima.  Following the paper, two texts are considered
identical when their signatures agree, so grouping is a dictionary
bucket on the signature tuple.

Shingles are hashed with :func:`stable_hash64`, not builtin
``hash()``: the builtin is salted per process (``PYTHONHASHSEED``),
so its signatures would disagree across pool workers and across
reruns — exactly the nondeterminism lint rule RPL005 bans.
"""

from __future__ import annotations

from collections import defaultdict
from hashlib import blake2b

import numpy as np

from ..features.textstats import strip_for_shingling
from ..parallel import parallel_map
from .dhash import _UnionFind

_MERSENNE_PRIME = (1 << 61) - 1

#: Default number of LSH bands a k-minima signature is cut into.
DEFAULT_BANDS = 4


def stable_hash64(text: str) -> int:
    """Process-stable 63-bit hash of a text (blake2b-derived).

    Identical across interpreter runs, ``PYTHONHASHSEED`` values, and
    pool workers — the property builtin ``hash()`` deliberately lacks.
    The top bit is masked off so values fit ``np.int64``.
    """
    digest = blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFFFFFFFFFFFFFF


#: Shingle-hash memo: tri-grams draw from a tiny alphabet, so distinct
#: shingles number in the low thousands per run while hash calls number
#: in the hundreds of thousands.  Pure function of the text — safe to
#: share process-wide (workers rebuild their own copy on demand).
_SHINGLE_HASH_CAP = 500_000
_shingle_hash: dict[str, int] = {}


def _stable_hash64_cached(text: str) -> int:
    value = _shingle_hash.get(text)
    if value is None:
        if len(_shingle_hash) >= _SHINGLE_HASH_CAP:
            _shingle_hash.clear()
        value = stable_hash64(text)
        _shingle_hash[text] = value
    return value


class MinHasher:
    """k-function MinHash signatures over character tri-grams.

    Args:
        n_hashes: signature length k (more = stricter identity).
        shingle_size: character n-gram size (paper: tri-grams).
        seed: seeds the universal hash coefficients.
    """

    def __init__(
        self, n_hashes: int = 16, shingle_size: int = 3, seed: int = 0
    ) -> None:
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        if shingle_size < 1:
            raise ValueError("shingle_size must be >= 1")
        self.n_hashes = n_hashes
        self.shingle_size = shingle_size
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)

    def shingles(self, text: str) -> set[int]:
        """Hashed character shingles of a normalized text."""
        normalized = strip_for_shingling(text)
        k = self.shingle_size
        if len(normalized) < k:
            return {_stable_hash64_cached(normalized)}
        hash_of = _stable_hash64_cached
        return {
            hash_of(normalized[i : i + k])
            for i in range(len(normalized) - k + 1)
        }

    def signature(self, text: str) -> tuple[int, ...]:
        """MinHash signature of a text."""
        shingles = np.fromiter(
            sorted(self.shingles(text)), dtype=np.int64
        )
        # (k, s) universal hashes; min over shingles per function.
        hashed = (
            self._a[:, None] * shingles[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        return tuple(hashed.min(axis=1).tolist())

    def similarity(self, text_a: str, text_b: str) -> float:
        """Estimated Jaccard similarity: fraction of agreeing minima."""
        sig_a = self.signature(text_a)
        sig_b = self.signature(text_b)
        agree = sum(a == b for a, b in zip(sig_a, sig_b))
        return agree / self.n_hashes


def band_keys(
    signature: tuple[int, ...], n_bands: int = DEFAULT_BANDS
) -> list[tuple[int, tuple[int, ...]]]:
    """The LSH band keys of one signature.

    The k minima are cut into ``n_bands`` contiguous bands of
    ``k // n_bands`` rows; two signatures that agree on any whole band
    land in a shared bucket and become a candidate pair.

    Raises:
        ValueError: if the signature length is not divisible into
            equal-sized bands.
    """
    k = len(signature)
    if n_bands < 1 or k % n_bands:
        raise ValueError(
            f"cannot cut a {k}-minima signature into {n_bands} equal bands"
        )
    rows = k // n_bands
    return [
        (b, signature[b * rows : (b + 1) * rows]) for b in range(n_bands)
    ]


def group_signatures_banded(
    signatures: list[tuple[int, ...]],
    scopes: list | None = None,
    threshold: float = 1.0,
    n_bands: int = DEFAULT_BANDS,
) -> list[list[int]]:
    """Group signature indices via LSH banding + verified candidates.

    Candidate pairs come from band buckets instead of an all-pairs
    scan: signatures agreeing on at least one whole band share a
    bucket, and only bucket-mates are verified against ``threshold``
    (minimum fraction of agreeing minima) before being merged through
    a union-find.  At the default ``threshold=1.0`` verification is
    exact signature equality, so the groups are bit-identical to
    full-signature dict bucketing — banding only replaces the
    candidate scan.  Below 1.0 the grouping is true near-duplicate
    single-linkage, with the standard LSH guarantee that any pair
    agreeing on >= ``k/n_bands`` consecutive minima is considered.

    ``scopes`` (e.g. the tweet's day window) is folded into every
    bucket key, so a group never spans two scopes.

    Returns:
        Groups of indices (size >= 2), ordered by first member with
        members ascending — the emission order a first-appearance
        dict bucket produces, at any worker count.
    """
    n = len(signatures)
    uf = _UnionFind(n)
    k = len(signatures[0]) if signatures else 0
    if k and (n_bands < 1 or k % n_bands):
        raise ValueError(
            f"cannot cut a {k}-minima signature into {n_bands} equal bands"
        )
    min_agree = threshold * k
    exact = threshold >= 1.0
    checked: set[tuple[int, int]] = set()
    rows = k // n_bands if n_bands else 0
    for band in range(n_bands):
        buckets: dict[tuple, list[int]] = defaultdict(list)
        for idx, signature in enumerate(signatures):
            key = signature[band * rows : (band + 1) * rows]
            if scopes is not None:
                buckets[(scopes[idx], key)].append(idx)
            else:
                buckets[key].append(idx)
        for members in buckets.values():
            if len(members) < 2:
                continue
            if exact:
                # Equality is transitive: sub-bucket on the full
                # signature (linear) instead of pairwise verification.
                classes: dict[tuple[int, ...], int] = {}
                for idx in members:
                    first = classes.setdefault(signatures[idx], idx)
                    if first != idx:
                        uf.union(first, idx)
                continue
            for i, idx_a in enumerate(members):
                sig_a = signatures[idx_a]
                for idx_b in members[i + 1 :]:
                    pair = (idx_a, idx_b)
                    if pair in checked:
                        continue
                    checked.add(pair)
                    sig_b = signatures[idx_b]
                    agree = sum(
                        a == b for a, b in zip(sig_a, sig_b)
                    )
                    if agree >= min_agree:
                        uf.union(idx_a, idx_b)
        if exact:
            # Equal signatures agree on every band; later bands would
            # only repeat the same unions.
            break
    components: dict[int, list[int]] = defaultdict(list)
    for idx in range(n):
        components[uf.find(idx)].append(idx)
    groups = [
        members for members in components.values() if len(members) >= 2
    ]
    groups.sort(key=lambda members: members[0])
    return groups


def _distinct_signatures(
    texts: list[str],
    hasher: MinHasher,
    workers: int | None,
    label: str,
) -> list[tuple[int, ...]]:
    """Signatures of ``texts``, hashing each distinct string once.

    The signature is a pure function of the text and campaign blasts
    repeat texts heavily, so signatures are computed per distinct
    string (in first-appearance order — positionally stable at any
    worker count) and fanned back out.
    """
    slot_of: dict[str, int] = {}
    distinct: list[str] = []
    for text in texts:
        if text not in slot_of:
            slot_of[text] = len(distinct)
            distinct.append(text)
    computed = parallel_map(
        hasher.signature, distinct, workers=workers, label=label
    )
    return [computed[slot_of[text]] for text in texts]


def group_by_signature(
    texts: list[str],
    hasher: MinHasher | None = None,
    workers: int | None = None,
    threshold: float = 1.0,
    n_bands: int = DEFAULT_BANDS,
) -> list[list[int]]:
    """Group indices of texts with near-identical MinHash signatures.

    Empty (post-normalization) texts are never grouped: a blank bio is
    not evidence of affiliation.

    Signature computation — the O(text length x k) hot loop — runs
    once per distinct text and fans out over ``workers`` pool
    processes (0 = sequential; ``None`` defers to the ambient
    :func:`repro.parallel.resolve_workers` rule).  Candidate pairs
    come from LSH band buckets (:func:`group_signatures_banded`), not
    an all-pairs scan; at the default ``threshold=1.0`` the groups are
    bit-identical to exact-signature bucketing, at any worker count.

    Returns:
        Groups of indices, each of size >= 2.
    """
    hasher = hasher or MinHasher()
    eligible = [
        (idx, text)
        for idx, text in enumerate(texts)
        if strip_for_shingling(text)
    ]
    signatures = _distinct_signatures(
        [text for __, text in eligible], hasher, workers, "minhash"
    )
    groups = group_signatures_banded(
        signatures, threshold=threshold, n_bands=n_bands
    )
    return [[eligible[i][0] for i in members] for members in groups]
