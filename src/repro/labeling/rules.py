"""Rule-based labeling policies (Section IV-B).

The paper lists eleven spam conditions, a seed-account whitelist for
non-spam, and an affiliation-symbol rule.  Each condition is a
standalone predicate over a tweet (with a little stream context), so
individual rules are unit-testable and the pipeline can report which
rule fired.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..features.content import normalize_text_for_dedup
from ..features.textstats import count_digits, count_emoji
from ..twittersim.entities import Tweet, TweetSource
from ..twittersim.text import SPAM_KEYWORD_CLASSES, is_malicious_url

#: Symbols whose group-wide presence triggers the affiliation rule.
AFFILIATION_SYMBOLS = ("💰", "🔥", "💯")

_MONEY = frozenset(SPAM_KEYWORD_CLASSES["money"])
_ADULT = frozenset(SPAM_KEYWORD_CLASSES["adult"])
_PROMO = frozenset(SPAM_KEYWORD_CLASSES["promo"])
_DECEPTION = frozenset(SPAM_KEYWORD_CLASSES["deception"])
_OFFENSIVE = frozenset({"explicit", "xxx", "offensive", "hate"})


def _words(tweet: Tweet) -> set[str]:
    return {
        token.strip(".,!?#").lower()
        for token in tweet.text.split()
        if not token.startswith("@") and not token.startswith("http")
    }


@dataclass
class StreamContext:
    """Cross-tweet context the repetition and bot rules need."""

    text_counts: Counter = field(default_factory=Counter)
    #: Prior interaction pairs (sender, receiver) seen in the stream.
    known_pairs: set[tuple[int, int]] = field(default_factory=set)

    def observe(self, tweet: Tweet) -> None:
        """Fold a tweet into the context (call after evaluating it)."""
        self.text_counts[normalize_text_for_dedup(tweet.text)] += 1
        for mention in tweet.mentions:
            self.known_pairs.add((tweet.user.user_id, mention.user_id))


# --- The 11 spam conditions -------------------------------------------------


def rule_malicious_url(tweet: Tweet, ctx: StreamContext) -> bool:
    """1) has a malicious URL (blacklist hit)."""
    return any(is_malicious_url(url) for url in tweet.urls)


def rule_repetitive(tweet: Tweet, ctx: StreamContext) -> bool:
    """2) includes repetitive information (same content >= 3 times)."""
    return ctx.text_counts[normalize_text_for_dedup(tweet.text)] >= 3


def rule_deceptive(tweet: Tweet, ctx: StreamContext) -> bool:
    """3) includes deceptive information (phishing-style keywords)."""
    return len(_words(tweet) & _DECEPTION) >= 2


def rule_pertinence(tweet: Tweet, ctx: StreamContext) -> bool:
    """4) has pertinence purpose: unsolicited targeted promotion."""
    return bool(tweet.mentions) and len(_words(tweet) & _PROMO) >= 2


def rule_meaningless(tweet: Tweet, ctx: StreamContext) -> bool:
    """5) includes many meaningless contents (symbol/digit-dominated)."""
    words = [
        token
        for token in tweet.text.split()
        if not token.startswith(("@", "http", "#"))
    ]
    if len(words) > 4:
        return False
    noise = count_emoji(tweet.text) + count_digits(tweet.text)
    return noise >= 6


def rule_money(tweet: Tweet, ctx: StreamContext) -> bool:
    """6) promises free or quick money gain."""
    return len(_words(tweet) & _MONEY) >= 2


def rule_adult(tweet: Tweet, ctx: StreamContext) -> bool:
    """7) includes adult content."""
    return len(_words(tweet) & _ADULT) >= 1


def rule_bot_automation(tweet: Tweet, ctx: StreamContext) -> bool:
    """8) automatic bot/app tweet with malicious signals.

    Third-party client + templated (repeated) content + a near-instant
    reaction time is the bot signature.
    """
    if tweet.source is not TweetSource.THIRD_PARTY:
        return False
    repeated = ctx.text_counts[normalize_text_for_dedup(tweet.text)] >= 2
    mention_time = tweet.mention_time()
    instant = mention_time is not None and mention_time < 120.0
    return repeated and instant


def rule_malicious_promoter(tweet: Tweet, ctx: StreamContext) -> bool:
    """9) from malicious promoters: promo keywords plus a link."""
    return bool(tweet.urls) and len(_words(tweet) & _PROMO) >= 1 and any(
        is_malicious_url(url) for url in tweet.urls
    )


def rule_friend_infiltrator(tweet: Tweet, ctx: StreamContext) -> bool:
    """10) friend infiltrators: cold-mention strangers with spam bait."""
    if not tweet.mentions:
        return False
    sender = tweet.user.user_id
    cold = all(
        (sender, m.user_id) not in ctx.known_pairs for m in tweet.mentions
    )
    baity = len(_words(tweet) & (_MONEY | _PROMO | _ADULT | _DECEPTION)) >= 2
    return cold and baity


def rule_offensive(tweet: Tweet, ctx: StreamContext) -> bool:
    """11) includes sensitive or offensive contents."""
    return len(_words(tweet) & _OFFENSIVE) >= 1


SPAM_RULES = (
    rule_malicious_url,
    rule_repetitive,
    rule_deceptive,
    rule_pertinence,
    rule_meaningless,
    rule_money,
    rule_adult,
    rule_bot_automation,
    rule_malicious_promoter,
    rule_friend_infiltrator,
    rule_offensive,
)


def matching_rules(tweet: Tweet, ctx: StreamContext) -> list[str]:
    """Names of all spam rules a tweet triggers."""
    return [rule.__name__ for rule in SPAM_RULES if rule(tweet, ctx)]


def is_rule_spam(tweet: Tweet, ctx: StreamContext) -> bool:
    """True if any of the 11 conditions fires."""
    return any(rule(tweet, ctx) for rule in SPAM_RULES)


# --- Non-spam seeds and the affiliation-symbol rule -------------------------


def is_seed_account(tweet: Tweet) -> bool:
    """Seed non-spam: verified institutional accounts.

    The paper whitelists governments, famous companies, organizations
    and well-known persons; the platform's verified badge is the
    available proxy.
    """
    return tweet.user.verified


def symbol_affiliation_spam(
    tweets: list[Tweet], name_groups: list[list[int]]
) -> set[int]:
    """Affiliation-symbol rule over screen-name pattern groups.

    A tweet is spam if it carries an affiliation symbol *and* comes
    from a group of same-affiliation users (same registration pattern)
    in which the majority of tweets carry the symbol too.

    Args:
        tweets: candidate tweets.
        name_groups: groups of indices into ``tweets`` whose authors
            share a screen-name pattern.

    Returns:
        Indices of tweets labeled spam by this rule.
    """
    flagged: set[int] = set()
    for group in name_groups:
        with_symbol = [
            idx
            for idx in group
            if any(sym in tweets[idx].text for sym in AFFILIATION_SYMBOLS)
        ]
        if len(with_symbol) * 2 > len(group):
            flagged.update(with_symbol)
    return flagged
