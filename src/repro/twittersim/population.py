"""Account population: organic users, campaigns, lone spammers.

The generator draws profile attributes from log-uniform distributions
spanning the full sample-value ranges of Table II, so every sampling
bin (friends=10 … friends=10k, account age 10 … 3,000 days, …) is
populated and the attribute-based selection layer always finds
candidates.  Internal consistency is enforced: counters are *rate ×
account age*, so per-day averages (average statuses/lists/favourites
per day) are meaningful and independently distributed from the raw
counters, as the paper's attribute list requires.

Ground truth about who is a spammer lives in :class:`GroundTruth` and
is never exposed through public records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .campaigns import Campaign, make_campaign
from .clock import days
from .columnar import AccountColumns, AccountMap
from .config import SimulationConfig
from .entities import AccountState
from .hashtags import HashtagCategory
from .images import DEFAULT_IMAGE_ID, ImageStore
from .text import (
    BENIGN_WORDS,
    TextGenerator,
    campaign_screen_name,
    normal_screen_name,
)


class AccountKind(enum.Enum):
    """Hidden ground-truth role of an account."""

    NORMAL = "normal"
    CAMPAIGN_SPAMMER = "campaign_spammer"
    LONE_SPAMMER = "lone_spammer"
    COMPROMISED = "compromised"

    @property
    def is_spammer(self) -> bool:
        """Campaign members, lone wolves, and compromised relays spam."""
        return self is not AccountKind.NORMAL


@dataclass
class GroundTruth:
    """Oracle knowledge used only by evaluation and the labeling oracle."""

    account_kind: dict[int, AccountKind] = field(default_factory=dict)
    account_campaign: dict[int, int] = field(default_factory=dict)
    spam_tweet_ids: set[int] = field(default_factory=set)

    def is_spammer(self, user_id: int) -> bool:
        """True if the account's hidden role emits spam."""
        kind = self.account_kind.get(user_id)
        return kind is not None and kind.is_spammer

    def is_spam_tweet(self, tweet_id: int) -> bool:
        """True if the tweet was generated through a spam path."""
        return tweet_id in self.spam_tweet_ids

    def spammer_ids(self) -> set[int]:
        """All accounts whose hidden role is a spammer role."""
        return {
            uid for uid, kind in self.account_kind.items() if kind.is_spammer
        }


def _log_uniform(
    rng: np.random.Generator, low: float, high: float, size: int
) -> np.ndarray:
    """Samples log-uniformly over [low, high]."""
    return np.exp(rng.uniform(np.log(low), np.log(high), size=size))


class _NameRegistry:
    """Enforces platform-wide screen-name uniqueness (as Twitter does).

    Streaming filters and mention entities address accounts by handle;
    duplicate handles would let one account capture traffic aimed at a
    same-named stranger.
    """

    def __init__(self) -> None:
        self._used: set[str] = set()

    def claim(self, candidate: str, rng: np.random.Generator) -> str:
        name = candidate
        while name in self._used:
            name = f"{candidate}_{rng.integers(0, 10_000_000)}"
        self._used.add(name)
        return name


class Population:
    """The full account population plus supporting stores.

    ``rates`` arrays are indexed by position; ``index_of`` maps user id
    to position.  The engine uses the arrays for vectorized per-hour
    activity sampling.

    Per-position arrays (rates, affinity, flags) are backed by
    capacity-doubling buffers so late registration (campaign respawn,
    operator accounts) stays amortized O(1); the public attributes
    expose the live ``[:n]`` slice, which aliases the buffer and is
    therefore writable in place.

    When ``config.columnar`` is set (the default), account state lives
    in :class:`~repro.twittersim.columnar.AccountColumns` and
    ``accounts`` is an :class:`~repro.twittersim.columnar.AccountMap`
    of thin views; otherwise it is a plain dict of
    :class:`~repro.twittersim.entities.AccountState` objects.  Both
    modes are bitwise-identical in behavior (see the columnar parity
    suite); row index in the columns always equals ``index_of[uid]``.
    """

    def __init__(
        self,
        config: SimulationConfig,
        accounts: dict[int, AccountState],
        order: list[int],
        index_of: dict[int, int],
        post_rate_per_day: np.ndarray,
        fav_rate_per_day: np.ndarray,
        interests: dict[int, tuple[HashtagCategory, ...]],
        topic_affinity: np.ndarray,
        campaigns: list[Campaign],
        truth: GroundTruth,
        images: ImageStore,
        text: TextGenerator,
        lone_spammer_templates: dict[int, tuple[str, int]],
        rng: np.random.Generator,
        names: "_NameRegistry",
        always_on: np.ndarray | None = None,
        _next_user_id: int = 0,
    ) -> None:
        self.config = config
        self.accounts = accounts
        self.order = order
        self.index_of = index_of
        self.interests = interests
        self.campaigns = campaigns
        self.truth = truth
        self.images = images
        self.text = text
        self.lone_spammer_templates = lone_spammer_templates
        self.rng = rng
        self.names = names
        self._next_user_id = _next_user_id
        self.cols: AccountColumns | None = None
        n = len(order)
        self._n_rows = n
        capacity = max(n, 1)
        self._post_rate = np.zeros(capacity, dtype=np.float64)
        self._post_rate[:n] = post_rate_per_day
        self._fav_rate = np.zeros(capacity, dtype=np.float64)
        self._fav_rate[:n] = fav_rate_per_day
        self._topic_affinity = np.zeros(capacity, dtype=np.float64)
        self._topic_affinity[:n] = topic_affinity
        self._always_on = np.zeros(capacity, dtype=bool)
        if always_on is not None:
            self._always_on[:n] = always_on
        #: True where the account's role carries the *spam* suspension
        #: hazard (campaign members and lone wolves; compromised relays
        #: keep the normal hazard).  Maintained by ``_register``.
        self._spam_hazard = np.zeros(capacity, dtype=bool)
        #: True for campaign members (respawn-capable under suspension).
        self._campaign_member = np.zeros(capacity, dtype=bool)

    # -- per-position array views -----------------------------------------

    @property
    def post_rate_per_day(self) -> np.ndarray:
        return self._post_rate[: self._n_rows]

    @property
    def fav_rate_per_day(self) -> np.ndarray:
        return self._fav_rate[: self._n_rows]

    @property
    def topic_affinity(self) -> np.ndarray:
        return self._topic_affinity[: self._n_rows]

    @property
    def always_on(self) -> np.ndarray:
        """Accounts exempt from burst dormancy (operator honeypots)."""
        return self._always_on[: self._n_rows]

    @property
    def spam_hazard(self) -> np.ndarray:
        return self._spam_hazard[: self._n_rows]

    @property
    def campaign_member_flags(self) -> np.ndarray:
        return self._campaign_member[: self._n_rows]

    def _grow_position_arrays(self) -> None:
        if self._n_rows < len(self._post_rate):
            return
        capacity = max(2 * len(self._post_rate), self._n_rows + 1)
        for attr in (
            "_post_rate",
            "_fav_rate",
            "_topic_affinity",
            "_always_on",
            "_spam_hazard",
            "_campaign_member",
        ):
            old = getattr(self, attr)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: self._n_rows] = old[: self._n_rows]
            setattr(self, attr, grown)

    # -- columnar backend --------------------------------------------------

    def to_columnar(self) -> None:
        """Move account state into columns; ``accounts`` becomes views.

        Row index equals registration order, i.e. ``index_of[uid]``.
        """
        cols = AccountColumns(capacity=max(len(self.order), 1))
        for uid in self.order:
            cols.append_state(self.accounts[uid])
        self.cols = cols
        self.accounts = AccountMap(cols, self.index_of)

    def suspended_flags(self) -> np.ndarray:
        """Per-position suspension flags (columnar: aliasing view)."""
        if self.cols is not None:
            return self.cols.suspended
        flags = np.empty(len(self.order), dtype=bool)
        for i, uid in enumerate(self.order):
            flags[i] = self.accounts[uid].suspended
        return flags

    # -- queries ----------------------------------------------------------

    def account(self, user_id: int) -> AccountState:
        """Look up the mutable platform state of an account."""
        return self.accounts[user_id]

    def live_ids(self) -> list[int]:
        """Ids of accounts that are not suspended."""
        if self.cols is not None:
            order = self.order
            return [
                order[i] for i in np.nonzero(~self.cols.suspended)[0]
            ]
        return [uid for uid in self.order if not self.accounts[uid].suspended]

    def normal_ids(self) -> list[int]:
        """Ids of accounts whose ground-truth role is NORMAL."""
        return [
            uid
            for uid in self.order
            if self.truth.account_kind[uid] is AccountKind.NORMAL
        ]

    def spammer_ids(self) -> list[int]:
        """Ids of accounts with a spamming ground-truth role."""
        return [
            uid
            for uid in self.order
            if self.truth.account_kind[uid].is_spammer
        ]

    # -- growth -----------------------------------------------------------

    def spawn_campaign_member(self, campaign: Campaign, now: float) -> int:
        """Register a fresh campaign account (used for respawn)."""
        rng = self.rng
        user_id = self._next_user_id
        self._next_user_id += 1
        age_days = float(_log_uniform(rng, 2.0, 120.0, 1)[0])
        image_id = self.images.new_campaign_variant(campaign.base_image_id)
        account = AccountState(
            user_id=user_id,
            screen_name=self.names.claim(
                campaign_screen_name(
                    campaign.name_prefix, campaign.name_digits, rng
                ),
                rng,
            ),
            name=campaign.name_prefix.capitalize(),
            created_at=now - days(age_days),
            description=self.text.campaign_description(
                campaign.description_words
            ),
            friends_count=int(_log_uniform(rng, 50, 3000, 1)[0]),
            followers_count=int(_log_uniform(rng, 1, 200, 1)[0]),
            statuses_count=int(_log_uniform(rng, 10, 2000, 1)[0]),
            listed_count=0,
            favourites_count=int(_log_uniform(rng, 1, 100, 1)[0]),
            default_profile_image=bool(rng.random() < 0.25),
            profile_image_id=image_id,
        )
        if account.default_profile_image:
            account.profile_image_id = DEFAULT_IMAGE_ID
        self._register(account, AccountKind.CAMPAIGN_SPAMMER)
        self.truth.account_campaign[user_id] = campaign.campaign_id
        campaign.member_ids.append(user_id)
        return user_id

    def register_operator_account(
        self,
        account: AccountState,
        post_rate_per_day: float = 0.0,
        interests: tuple[HashtagCategory, ...] = (),
        topic_affinity: float = 0.0,
    ) -> int:
        """Register an operator-created account (honeypot baselines).

        The account behaves organically: the engine posts for it at
        ``post_rate_per_day`` with the given hashtag interests and
        trending-topic affinity.  Its ground-truth role is NORMAL (the
        operator is not a spammer).

        Raises:
            ValueError: if the user id is already taken.
        """
        if account.user_id in self.accounts:
            raise ValueError(f"user id {account.user_id} already exists")
        account.screen_name = self.names.claim(account.screen_name, self.rng)
        self._register(account, AccountKind.NORMAL)
        idx = self.index_of[account.user_id]
        self.post_rate_per_day[idx] = post_rate_per_day
        self.topic_affinity[idx] = topic_affinity
        self.always_on[idx] = True
        self.interests[account.user_id] = interests
        return account.user_id

    def next_user_id(self) -> int:
        """Allocate a fresh user id."""
        user_id = self._next_user_id
        self._next_user_id += 1
        return user_id

    def _register(self, account: AccountState, kind: AccountKind) -> None:
        if self.cols is not None:
            # Row index equals position in ``order`` by construction.
            self.cols.append_state(account)
        else:
            self.accounts[account.user_id] = account
        self.index_of[account.user_id] = len(self.order)
        self.order.append(account.user_id)
        self.truth.account_kind[account.user_id] = kind
        # Spam accounts post through their campaign logic, not the
        # organic rate arrays, so extend rates with zeros (the buffers
        # grow geometrically; new slots are already zero-filled).
        self._grow_position_arrays()
        self._n_rows += 1
        idx = self._n_rows - 1
        self._spam_hazard[idx] = kind in (
            AccountKind.CAMPAIGN_SPAMMER,
            AccountKind.LONE_SPAMMER,
        )
        self._campaign_member[idx] = kind is AccountKind.CAMPAIGN_SPAMMER
        self.interests[account.user_id] = ()


def build_population(config: SimulationConfig) -> Population:
    """Construct the full synthetic population for a configuration."""
    rng = np.random.default_rng(config.seed)
    images = ImageStore(rng)
    text = TextGenerator(rng)
    truth = GroundTruth()
    names = _NameRegistry()

    n = config.n_normal_users
    age_days = _log_uniform(
        rng, config.min_account_age_days, config.max_account_age_days, n
    )
    post_rate = _log_uniform(rng, config.post_rate_min, config.post_rate_max, n)
    fav_rate = _log_uniform(rng, 0.02, 100.0, n)
    # List activity is heavy-tailed and *rare* at the top: most users are
    # listed almost never, a small popular minority joins lists daily.
    # (If high list-rates were common, the attribute would lose all
    # discriminative power for spammer tastes, contra Table VI.)
    heavy = rng.random(n) < 0.08
    list_rate = np.where(
        heavy,
        _log_uniform(rng, 0.2, 2.5, n),
        _log_uniform(rng, 0.001, 0.2, n),
    )
    # Heavily-listed accounts are the platform's active, visible ones:
    # being added to lists is a consequence of posting prolifically.
    # The correlation matters downstream — it keeps high-list-activity
    # accounts present in the recently-posted victim pool, as they are
    # on the real platform.
    post_rate = np.where(
        heavy, _log_uniform(rng, 3.0, config.post_rate_max, n), post_rate
    )
    # Audience sizes are log-normal: medians of a few hundred with a
    # thin (~1-2%) tail past 10k, approximating real follower-count
    # distributions far better than a flat log-uniform would.
    friends = np.clip(
        rng.lognormal(mean=np.log(250.0), sigma=1.6, size=n), 1, 80_000
    ).astype(int)
    followers = np.clip(
        rng.lognormal(mean=np.log(200.0), sigma=1.8, size=n), 1, 120_000
    ).astype(int)

    statuses = np.minimum(post_rate * age_days, 300_000).astype(int)
    favourites = np.minimum(fav_rate * age_days, 300_000).astype(int)
    listed = np.minimum(list_rate * age_days, 3000).astype(int)

    accounts: dict[int, AccountState] = {}
    order: list[int] = []
    index_of: dict[int, int] = {}
    interests: dict[int, tuple[HashtagCategory, ...]] = {}
    categories = list(HashtagCategory)

    for i in range(n):
        user_id = i
        verified = bool(rng.random() < 0.005 and followers[i] > 3000)
        default_image = bool(rng.random() < 0.06)
        account = AccountState(
            user_id=user_id,
            screen_name=names.claim(normal_screen_name(rng), rng),
            name=normal_screen_name(rng).replace("_", " ").title(),
            created_at=-days(float(age_days[i])),
            description=text.benign_description(),
            friends_count=int(friends[i]),
            followers_count=int(followers[i]),
            statuses_count=int(statuses[i]),
            listed_count=int(listed[i]),
            favourites_count=int(favourites[i]),
            verified=verified,
            default_profile_image=default_image,
            profile_image_id=(
                DEFAULT_IMAGE_ID if default_image else images.new_random_image()
            ),
        )
        accounts[user_id] = account
        index_of[user_id] = len(order)
        order.append(user_id)
        truth.account_kind[user_id] = AccountKind.NORMAL
        if rng.random() < config.no_hashtag_fraction:
            interests[user_id] = ()
        else:
            k = int(rng.integers(1, 3))
            picks = rng.choice(len(categories), size=k, replace=False)
            interests[user_id] = tuple(categories[j] for j in picks)

    topic_affinity = np.clip(
        rng.beta(2, 2, size=n) * 2 * config.topic_affinity_mean, 0, 0.95
    )

    population = Population(
        config=config,
        accounts=accounts,
        order=order,
        index_of=index_of,
        post_rate_per_day=post_rate.copy(),
        fav_rate_per_day=fav_rate.copy(),
        interests=interests,
        topic_affinity=topic_affinity,
        campaigns=[],
        truth=truth,
        images=images,
        text=text,
        lone_spammer_templates={},
        rng=rng,
        names=names,
        always_on=np.zeros(n, dtype=bool),
        _next_user_id=n,
    )

    # Mark a slice of normal users as compromised relays.
    n_compromised = int(round(config.compromised_fraction * n))
    if n_compromised:
        compromised = rng.choice(n, size=n_compromised, replace=False)
        for uid in compromised:
            truth.account_kind[int(uid)] = AccountKind.COMPROMISED

    # Coordinated campaigns.
    for cid in range(config.n_campaigns):
        base_image = images.new_campaign_base()
        bio_words = tuple(
            BENIGN_WORDS[int(i)]
            for i in rng.integers(0, len(BENIGN_WORDS), size=6)
        )
        campaign = make_campaign(
            cid,
            rng,
            base_image,
            bio_words,
            actions_min=config.spam_actions_min,
            actions_max=config.spam_actions_max,
        )
        population.campaigns.append(campaign)
        size = int(
            rng.integers(config.campaign_size_min, config.campaign_size_max + 1)
        )
        for __ in range(size):
            population.spawn_campaign_member(campaign, now=0.0)

    # Compromised relays borrow a campaign's content.
    if population.campaigns:
        for uid, kind in truth.account_kind.items():
            if kind is AccountKind.COMPROMISED:
                campaign = population.campaigns[
                    int(rng.integers(0, len(population.campaigns)))
                ]
                truth.account_campaign[uid] = campaign.campaign_id

    # Lone spammers: organic-looking profiles, personal spam templates.
    for __ in range(config.n_lone_spammers):
        user_id = population._next_user_id
        population._next_user_id += 1
        lone_age = float(_log_uniform(rng, 3.0, 400.0, 1)[0])
        account = AccountState(
            user_id=user_id,
            screen_name=population.names.claim(normal_screen_name(rng), rng),
            name=normal_screen_name(rng).title(),
            created_at=-days(lone_age),
            description=text.benign_description(),
            friends_count=int(_log_uniform(rng, 20, 5000, 1)[0]),
            followers_count=int(_log_uniform(rng, 1, 500, 1)[0]),
            statuses_count=int(_log_uniform(rng, 10, 5000, 1)[0]),
            listed_count=0,
            favourites_count=int(_log_uniform(rng, 1, 500, 1)[0]),
            default_profile_image=bool(rng.random() < 0.3),
            profile_image_id=images.new_random_image(),
        )
        if account.default_profile_image:
            account.profile_image_id = DEFAULT_IMAGE_ID
        population._register(account, AccountKind.LONE_SPAMMER)
        keyword_classes = ("money", "adult", "promo", "deception")
        keyword_class = keyword_classes[
            int(rng.integers(0, len(keyword_classes)))
        ]
        population.lone_spammer_templates[user_id] = (
            keyword_class,
            int(rng.integers(0, 1000)),
        )

    # The build above runs in object mode (no RNG draws depend on the
    # storage backend), then state moves into flat columns in one pass.
    if config.columnar:
        population.to_columnar()

    return population
