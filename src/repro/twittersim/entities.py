"""Public data records of the synthetic Twitter platform.

These mirror the subset of Twitter's JSON objects the paper consumes:
a tweet embeds a snapshot of its author's profile, its entities
(hashtags, mentions, URLs), a source label, and timestamps.  Everything
the pseudo-honeypot pipeline reads — all 58 features of Section IV-A —
is derivable from these records, exactly as the paper derives them from
tweet JSON.

Ground truth (who is actually a spammer) is deliberately *not* on these
records; it lives in :class:`repro.twittersim.population.GroundTruth`
and is only consulted by the labeling oracle and the evaluation code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from .clock import SECONDS_PER_DAY


class TweetKind(enum.Enum):
    """Tweet status: an original tweet, a retweet, or a quote tweet."""

    TWEET = "tweet"
    RETWEET = "retweet"
    QUOTE = "quote"


class TweetSource(enum.Enum):
    """The client a tweet was posted from.

    The paper buckets sources into web, mobile, third-party, and others;
    automation-heavy accounts skew toward third-party clients.
    """

    WEB = "web"
    MOBILE = "mobile"
    THIRD_PARTY = "third_party"
    OTHER = "other"


@dataclass(frozen=True, slots=True)
class UserProfile:
    """A public snapshot of an account profile at some instant.

    Attributes mirror Twitter user JSON fields.  ``created_at`` is in
    simulation seconds and may be negative for accounts that pre-date
    the simulation epoch.
    """

    user_id: int
    screen_name: str
    name: str
    created_at: float
    description: str
    friends_count: int
    followers_count: int
    statuses_count: int
    listed_count: int
    favourites_count: int
    verified: bool = False
    default_profile_image: bool = False
    profile_image_id: int = 0

    def age_days(self, now: float) -> float:
        """Account age in days at simulation time ``now`` (min 1 day).

        Clamping to one day keeps the per-day averages finite for
        brand-new accounts, matching how the paper's per-day attributes
        are necessarily computed.
        """
        return max((now - self.created_at) / SECONDS_PER_DAY, 1.0)

    def avg_statuses_per_day(self, now: float) -> float:
        """Average statuses posted per day of account life."""
        return self.statuses_count / self.age_days(now)

    def avg_lists_per_day(self, now: float) -> float:
        """Average list memberships gained per day of account life."""
        return self.listed_count / self.age_days(now)

    def avg_favourites_per_day(self, now: float) -> float:
        """Average favourites per day of account life."""
        return self.favourites_count / self.age_days(now)

    def friend_follower_ratio(self) -> float:
        """friends_count / followers_count with a floor of one follower."""
        return self.friends_count / max(self.followers_count, 1)

    def to_json(self) -> dict[str, Any]:
        """Serialize to a Twitter-like user JSON dictionary."""
        return {
            "id": self.user_id,
            "screen_name": self.screen_name,
            "name": self.name,
            "created_at": self.created_at,
            "description": self.description,
            "friends_count": self.friends_count,
            "followers_count": self.followers_count,
            "statuses_count": self.statuses_count,
            "listed_count": self.listed_count,
            "favourites_count": self.favourites_count,
            "verified": self.verified,
            "default_profile_image": self.default_profile_image,
            "profile_image_id": self.profile_image_id,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "UserProfile":
        """Deserialize from :meth:`to_json` output."""
        return cls(
            user_id=data["id"],
            screen_name=data["screen_name"],
            name=data["name"],
            created_at=data["created_at"],
            description=data["description"],
            friends_count=data["friends_count"],
            followers_count=data["followers_count"],
            statuses_count=data["statuses_count"],
            listed_count=data["listed_count"],
            favourites_count=data["favourites_count"],
            verified=data["verified"],
            default_profile_image=data["default_profile_image"],
            profile_image_id=data["profile_image_id"],
        )


@dataclass(frozen=True, slots=True)
class Mention:
    """An @-mention entity inside a tweet."""

    user_id: int
    screen_name: str


@dataclass(frozen=True, slots=True)
class Tweet:
    """A public tweet record, as delivered by the streaming API.

    ``in_reply_to_tweet_id`` / ``in_reply_to_created_at`` are set when
    the tweet reacts to a specific earlier post; the *mention time*
    behavioral feature (f_m = T_mention - T_post) is computed from them.
    """

    tweet_id: int
    created_at: float
    user: UserProfile
    text: str
    kind: TweetKind = TweetKind.TWEET
    source: TweetSource = TweetSource.WEB
    hashtags: tuple[str, ...] = ()
    mentions: tuple[Mention, ...] = ()
    urls: tuple[str, ...] = ()
    topic: str | None = None
    in_reply_to_tweet_id: int | None = None
    in_reply_to_created_at: float | None = None
    quoted_status_id: int | None = None

    def mentions_user(self, user_id: int) -> bool:
        """True if this tweet @-mentions the given user id."""
        return any(m.user_id == user_id for m in self.mentions)

    def mention_time(self) -> float | None:
        """Reaction delay f_m = T_mention - T_post, or None if not a reply."""
        if self.in_reply_to_created_at is None:
            return None
        return self.created_at - self.in_reply_to_created_at

    def to_json(self) -> dict[str, Any]:
        """Serialize to a Twitter-like tweet JSON dictionary."""
        return {
            "id": self.tweet_id,
            "created_at": self.created_at,
            "user": self.user.to_json(),
            "text": self.text,
            "kind": self.kind.value,
            "source": self.source.value,
            "entities": {
                "hashtags": list(self.hashtags),
                "user_mentions": [
                    {"id": m.user_id, "screen_name": m.screen_name}
                    for m in self.mentions
                ],
                "urls": list(self.urls),
            },
            "topic": self.topic,
            "in_reply_to_status_id": self.in_reply_to_tweet_id,
            "in_reply_to_created_at": self.in_reply_to_created_at,
            "quoted_status_id": self.quoted_status_id,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Tweet":
        """Deserialize from :meth:`to_json` output."""
        entities = data.get("entities", {})
        return cls(
            tweet_id=data["id"],
            created_at=data["created_at"],
            user=UserProfile.from_json(data["user"]),
            text=data["text"],
            kind=TweetKind(data["kind"]),
            source=TweetSource(data["source"]),
            hashtags=tuple(entities.get("hashtags", ())),
            mentions=tuple(
                Mention(m["id"], m["screen_name"])
                for m in entities.get("user_mentions", ())
            ),
            urls=tuple(entities.get("urls", ())),
            topic=data.get("topic"),
            in_reply_to_tweet_id=data.get("in_reply_to_status_id"),
            in_reply_to_created_at=data.get("in_reply_to_created_at"),
            quoted_status_id=data.get("quoted_status_id"),
        )


@dataclass(slots=True)
class AccountState:
    """Mutable platform-side state of an account.

    The engine mutates counters here and emits frozen
    :class:`UserProfile` snapshots into tweets, so a tweet's embedded
    profile reflects the account *at posting time*, like real tweet
    JSON does.
    """

    user_id: int
    screen_name: str
    name: str
    created_at: float
    description: str
    friends_count: int
    followers_count: int
    statuses_count: int
    listed_count: int
    favourites_count: int
    verified: bool = False
    default_profile_image: bool = False
    profile_image_id: int = 0
    suspended: bool = False
    last_post_at: float = field(default=float("-inf"))
    last_mentioned_at: float = field(default=float("-inf"))

    def snapshot(self) -> UserProfile:
        """Freeze the current state into a public profile snapshot."""
        return UserProfile(
            user_id=self.user_id,
            screen_name=self.screen_name,
            name=self.name,
            created_at=self.created_at,
            description=self.description,
            friends_count=self.friends_count,
            followers_count=self.followers_count,
            statuses_count=self.statuses_count,
            listed_count=self.listed_count,
            favourites_count=self.favourites_count,
            verified=self.verified,
            default_profile_image=self.default_profile_image,
            profile_image_id=self.profile_image_id,
        )
