"""Hashtag taxonomy of the synthetic platform.

The paper's hashtag-based attribute category (Table I, C2) groups
hashtags into eight topical classes plus "no hashtag".  The simulator
defines a fixed pool of hashtags per class; users have topical
interests and draw hashtags from the matching pools, so selecting
pseudo-honeypot nodes "possessing a hashtag" is well defined.
"""

from __future__ import annotations

import enum


class HashtagCategory(enum.Enum):
    """The eight topical hashtag classes of Table I (C2)."""

    ENTERTAINMENT = "entertainment"
    GENERAL = "general"
    BUSINESS = "business"
    TECH = "tech"
    EDUCATION = "education"
    ENVIRONMENT = "environment"
    SOCIAL = "social"
    ASTROLOGY = "astrology"


#: "no hashtag" pseudo-attribute label used by the selection layer.
NO_HASHTAG = "no_hashtag"

#: Hashtag pools per category.  Ten or more tags per category so the
#: "top 10 hashtags in each attribute" selection of Section V-A is
#: meaningful.
HASHTAG_POOLS: dict[HashtagCategory, tuple[str, ...]] = {
    HashtagCategory.ENTERTAINMENT: (
        "movies", "music", "netflix", "gaming", "celebrity", "tvshow",
        "concert", "boxoffice", "streaming", "fandom", "awards", "trailer",
    ),
    HashtagCategory.GENERAL: (
        "news", "life", "today", "photo", "love", "weekend",
        "morning", "random", "thoughts", "daily", "update", "mood",
    ),
    HashtagCategory.BUSINESS: (
        "startup", "marketing", "finance", "entrepreneur", "sales", "invest",
        "economy", "smallbiz", "branding", "leadership", "stocks", "crypto",
    ),
    HashtagCategory.TECH: (
        "ai", "coding", "cloud", "security", "bigdata", "opensource",
        "devops", "mobiledev", "iot", "robotics", "webdev", "machinelearning",
    ),
    HashtagCategory.EDUCATION: (
        "learning", "students", "teachers", "university", "stem", "study",
        "scholarship", "edtech", "classroom", "research", "mooc", "homework",
    ),
    HashtagCategory.ENVIRONMENT: (
        "climate", "sustainability", "recycle", "wildlife", "cleanenergy",
        "ocean", "forest", "greenliving", "pollution", "conservation",
        "solar", "earthday",
    ),
    HashtagCategory.SOCIAL: (
        "community", "friends", "party", "followback", "selfie", "trending",
        "viral", "follow", "share", "like4like", "socialmedia", "meetup",
    ),
    HashtagCategory.ASTROLOGY: (
        "horoscope", "zodiac", "aries", "taurus", "gemini", "leo",
        "virgo", "libra", "scorpio", "tarot", "fullmoon", "retrograde",
    ),
}

#: Reverse index hashtag -> category.
HASHTAG_CATEGORY: dict[str, HashtagCategory] = {
    tag: category
    for category, tags in HASHTAG_POOLS.items()
    for tag in tags
}


def category_of(hashtag: str) -> HashtagCategory | None:
    """Return the topical category of a hashtag, or None if unknown."""
    return HASHTAG_CATEGORY.get(hashtag)


def all_hashtags() -> tuple[str, ...]:
    """Every hashtag known to the platform, in stable order."""
    return tuple(
        tag for category in HashtagCategory for tag in HASHTAG_POOLS[category]
    )
