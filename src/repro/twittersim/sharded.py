"""Account-range sharding of the engine hour loop.

``SimulationConfig.engine_shards > 0`` switches the engine's dominant
per-account phase — organic post emission — to a fan-out over
``repro.parallel``.  The contract has two halves:

* **The shard count defines the stream.**  Shard ``s`` of hour ``h``
  draws every per-post random variable (timing, hashtags, topic, kind,
  text) from its own ``np.random.default_rng([seed, hour, shard])``
  substream.  Running the same world with a different shard count is a
  *different* (equally valid) world — exactly like changing the seed.
* **The worker count never does.**  Shard tasks are pure functions of
  their picklable payload, ``parallel_map`` gathers results in
  submission order, and the parent replays the merge (trending
  records, tweet finalization, stats) shard-by-shard in ascending
  shard order.  ``workers=0`` and ``workers=N`` produce bit-identical
  tweet streams, PGE tables, and report payloads.

Everything the per-post loop needs from the parent that is *not*
per-post randomness — burst-session state, Poisson post counts, the
suspension filter — is drawn from the parent's single stream before
the fan-out, so it is worker-count independent by construction.
Replies, spam, suspension, and tweet finalization (snowflake ids,
source draws, profile counters) stay on the parent stream, exactly as
in the unsharded engine.

Worker-side telemetry (the ``engine.shard.*`` counters below) flows
back through :mod:`repro.parallel.obsmerge`, so counter totals
reconcile at any worker count.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..obs import get_registry
from ..parallel import parallel_map
from . import behavior
from .clock import SECONDS_PER_HOUR
from .engine import HourStats, TwitterEngine
from .entities import Tweet, TweetKind
from .hashtags import HASHTAG_POOLS, HashtagCategory
from .population import Population
from .text import TextGenerator
from .trending import DEFAULT_TOPICS


@dataclass(frozen=True)
class ShardTask:
    """One shard's picklable work order for one hour.

    ``posting`` holds ``(row, n_posts, interests, affinity)`` per
    posting account, rows ascending within the shard's account range.
    """

    seed: int
    hour: int
    shard: int
    t0: float
    t_end: float
    topics: tuple[str, ...]
    topic_cdf: tuple[float, ...]
    posting: tuple[
        tuple[int, int, tuple[HashtagCategory, ...], float], ...
    ]


#: A shard-emitted proto-post: ``(row, created_at, text, kind,
#: hashtags, topic)``.  Plain data — the parent owns finalization.
ProtoPost = tuple[
    int, float, str, TweetKind, tuple[str, ...], "str | None"
]


def emit_shard(task: ShardTask) -> list[ProtoPost]:
    """Generate one shard's proto-posts from its private substream.

    Pure function of the task payload: runs identically inside a pool
    worker or inline in the parent process.  The per-post draw
    sequence mirrors ``TwitterEngine._make_organic_post`` exactly —
    only the generator differs.
    """
    rng = np.random.default_rng([task.seed, task.hour, task.shard])
    text_gen = TextGenerator(rng)
    t0 = task.t0
    span = task.t_end - t0
    topic_cdf = task.topic_cdf
    topics = task.topics
    protos: list[ProtoPost] = []
    for row, n_posts, interests, affinity in task.posting:
        for __ in range(n_posts):
            created_at = t0 + span * rng.random()
            hashtags: tuple[str, ...] = ()
            if interests and rng.random() < 0.7:
                category = interests[
                    int(rng.integers(0, len(interests)))
                ]
                pool = HASHTAG_POOLS[category]
                if rng.random() < 0.8:
                    hashtags = (pool[int(rng.integers(0, len(pool)))],)
                else:
                    picks = rng.choice(len(pool), size=2, replace=False)
                    hashtags = tuple(pool[int(j)] for j in picks)
            topic: str | None = None
            if rng.random() < affinity:
                topic = topics[bisect_right(topic_cdf, rng.random())]
            kind = behavior.draw_kind(rng, spammer=False)
            text = text_gen.benign_text()
            if topic is not None:
                text = f"{text} #{topic}"
            if hashtags:
                text = text + " " + " ".join(f"#{h}" for h in hashtags)
            protos.append(
                (row, created_at, text, kind, hashtags, topic)
            )
    registry = get_registry()
    registry.counter("engine.shard.tasks").inc()
    registry.counter("engine.shard.posts").inc(len(protos))
    return protos


class ShardedTwitterEngine(TwitterEngine):
    """A :class:`TwitterEngine` whose post loop fans out over shards.

    Args:
        population: the world (``config.engine_shards`` sets the shard
            count; values < 1 are clamped to 1).
        workers: pool size for the shard fan-out; ``None`` defers to
            the ambient :func:`repro.parallel.resolve_workers` rule
            and 0 forces in-process execution.  Identical output at
            every worker count.
    """

    def __init__(
        self,
        population: Population,
        taste=None,
        topics: tuple[str, ...] = DEFAULT_TOPICS,
        workers: int | None = None,
    ) -> None:
        super().__init__(population, taste, topics)
        self.n_shards = max(1, int(population.config.engine_shards))
        self.workers = workers

    def shard_bounds(self, n_rows: int) -> list[int]:
        """Contiguous account-range boundaries (len ``n_shards + 1``)."""
        return [
            n_rows * shard // self.n_shards
            for shard in range(self.n_shards + 1)
        ]

    def _emit_organic_posts(
        self, t0: float, t_end: float, hour: int, stats: HourStats
    ) -> list[Tweet]:
        pop = self.population
        # Parent-stream preamble: identical draws to the unsharded
        # engine (sessions, Poisson counts), so replies/spam/
        # suspension downstream see the same parent stream whatever
        # the worker count.
        on = self._update_sessions()
        scale = on.astype(np.float64) / pop.config.session_on_fraction
        if len(pop.always_on) == len(scale):
            scale[pop.always_on] = 1.0
        rates = pop.post_rate_per_day * scale / 24.0
        counts = self.rng.poisson(rates)
        posting = np.nonzero(counts)[0]
        if len(posting):
            suspended = np.asarray(pop.suspended_flags())
            posting = posting[~suspended[posting]]
        topic_weights = self.topic_process.weights_at(hour)
        topic_probs = topic_weights / topic_weights.sum()
        topic_cdf = topic_probs.cumsum()
        topic_cdf /= topic_cdf[-1]
        topic_cdf = tuple(topic_cdf.tolist())

        order = pop.order
        interests_of = pop.interests
        topic_affinity = pop.topic_affinity
        n_aff = len(topic_affinity)
        bounds = self.shard_bounds(len(order))
        posting_rows = posting.tolist()
        counts_of = counts
        seed = pop.config.seed
        topics = self.topic_process.topics
        tasks: list[ShardTask] = []
        pos = 0
        for shard in range(self.n_shards):
            hi = bounds[shard + 1]
            members: list[
                tuple[int, int, tuple[HashtagCategory, ...], float]
            ] = []
            while pos < len(posting_rows) and posting_rows[pos] < hi:
                row = posting_rows[pos]
                members.append(
                    (
                        row,
                        int(counts_of[row]),
                        interests_of.get(order[row], ()),
                        (
                            topic_affinity.item(row)
                            if row < n_aff
                            else 0.0
                        ),
                    )
                )
                pos += 1
            tasks.append(
                ShardTask(
                    seed=seed,
                    hour=hour,
                    shard=shard,
                    t0=t0,
                    t_end=t_end,
                    topics=topics,
                    topic_cdf=topic_cdf,
                    posting=tuple(members),
                )
            )

        shard_protos = parallel_map(
            emit_shard, tasks, workers=self.workers, label="engine.shards"
        )

        # Deterministic merge: ascending shard order, task order within
        # a shard.  The parent replays the world-mutating tail of
        # ``_make_organic_post`` here (trending records, finalization,
        # recent-post tracking), all on the parent stream.
        tweets: list[Tweet] = []
        accounts = pop.accounts
        for protos in shard_protos:
            for row, created_at, text, kind, hashtags, topic in protos:
                if topic is not None:
                    self.trending.record(
                        topic, int(created_at // SECONDS_PER_HOUR)
                    )
                tweet = self._finalize_tweet(
                    accounts[order[row]],
                    created_at,
                    text,
                    kind=kind,
                    spammer=False,
                    hashtags=hashtags,
                    topic=topic,
                )
                tweets.append(tweet)
                self._recent_posts.append(tweet)
                stats.organic_posts += 1
        return tweets


def build_engine(
    population: Population,
    taste=None,
    topics: tuple[str, ...] = DEFAULT_TOPICS,
    workers: int | None = None,
) -> TwitterEngine:
    """The engine a world's config asks for.

    ``engine_shards > 0`` selects :class:`ShardedTwitterEngine`;
    otherwise the legacy single-stream :class:`TwitterEngine` (the
    byte-stable reference every parity suite anchors on).
    """
    if population.config.engine_shards > 0:
        return ShardedTwitterEngine(
            population, taste, topics, workers=workers
        )
    return TwitterEngine(population, taste, topics)
