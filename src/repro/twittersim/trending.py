"""Trending-topic dynamics and classification.

The trending-based attribute category (Table I, C3) needs four labels:
*trending-up topics*, *trending-down topics*, *popular tweets*, and
*no-trending topics*.  The paper reads these from a commercial hashtag
analytics service [9]; the simulator substitutes its own topic
popularity process:

* every platform topic follows a stochastic rise/decay popularity
  curve (an attack-decay envelope with noise), so at any hour some
  topics are rising, some falling, and some stably popular;
* :class:`TrendingTracker` observes per-hour usage counts (as an
  analytics service would) and classifies topics by comparing recent
  windows, exposing ``top_trending_up`` / ``top_trending_down`` /
  ``top_popular`` rankings the selection layer consumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class TopicState:
    """Popularity of one topic at one hour."""

    name: str
    weight: float


class TopicProcess:
    """Simulator-side popularity process for platform topics.

    Each topic's popularity follows a randomly-phased rise-and-decay
    envelope; a refresh re-seeds dead topics so the platform always has
    live trends.  ``weights_at(hour)`` gives sampling weights used by
    the posting engine.
    """

    def __init__(
        self,
        topics: tuple[str, ...],
        rng: np.random.Generator,
        cycle_hours: float = 48.0,
    ) -> None:
        if not topics:
            raise ValueError("TopicProcess needs at least one topic")
        self._topics = topics
        self._rng = rng
        self._cycle = cycle_hours
        n = len(topics)
        # Random phase offsets and per-topic peak magnitudes.
        self._phase = rng.uniform(0, cycle_hours, size=n)
        self._peak = rng.lognormal(mean=0.0, sigma=0.6, size=n)
        self._rise = rng.uniform(4.0, 16.0, size=n)   # hours to peak
        self._decay = rng.uniform(8.0, 30.0, size=n)  # hours to die

    @property
    def topics(self) -> tuple[str, ...]:
        return self._topics

    def weights_at(self, hour: float) -> np.ndarray:
        """Relative popularity weight of each topic at ``hour``."""
        t = np.mod(hour + self._phase, self._cycle)
        rising = t < self._rise
        weight = np.where(
            rising,
            self._peak * (t / self._rise),
            self._peak * np.exp(-(t - self._rise) / self._decay),
        )
        return weight + 0.02  # floor so no topic fully disappears

    def states_at(self, hour: float) -> list[TopicState]:
        """All topics with their weights, descending by weight."""
        weights = self.weights_at(hour)
        order = np.argsort(-weights)
        return [TopicState(self._topics[i], float(weights[i])) for i in order]


class TrendingTracker:
    """Analytics-service substitute: classifies topics from usage counts.

    The tracker only sees what an external observer could: how many
    tweets used each topic in each hour.  Trend classification compares
    the last ``window`` hours against the preceding ``window`` hours.
    """

    def __init__(self, window_hours: int = 3, min_count: int = 5) -> None:
        if window_hours < 1:
            raise ValueError("window_hours must be >= 1")
        self._window = window_hours
        self._min_count = min_count
        self._counts: dict[int, dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    def record(self, topic: str, hour: int) -> None:
        """Record one tweet using ``topic`` during ``hour``."""
        self._counts[hour][topic] += 1

    def _window_counts(self, end_hour: int) -> dict[str, int]:
        totals: dict[str, int] = defaultdict(int)
        for hour in range(end_hour - self._window + 1, end_hour + 1):
            for topic, count in self._counts.get(hour, {}).items():
                totals[topic] += count
        return totals

    def momentum(self, hour: int) -> dict[str, float]:
        """Per-topic growth ratio of recent window over previous window."""
        recent = self._window_counts(hour)
        previous = self._window_counts(hour - self._window)
        topics = set(recent) | set(previous)
        return {
            topic: (recent.get(topic, 0) + 1) / (previous.get(topic, 0) + 1)
            for topic in sorted(topics)
        }

    def top_trending_up(self, hour: int, k: int = 10) -> list[str]:
        """Topics with the strongest recent growth and real volume."""
        recent = self._window_counts(hour)
        momentum = self.momentum(hour)
        eligible = [t for t, c in recent.items() if c >= self._min_count]
        eligible.sort(key=lambda t: (-momentum[t], t))
        return eligible[:k]

    def top_trending_down(self, hour: int, k: int = 10) -> list[str]:
        """Topics with the strongest recent decline that used to have volume."""
        previous = self._window_counts(hour - self._window)
        momentum = self.momentum(hour)
        eligible = [t for t, c in previous.items() if c >= self._min_count]
        eligible.sort(key=lambda t: (momentum[t], t))
        return eligible[:k]

    def top_popular(self, hour: int, k: int = 10) -> list[str]:
        """Topics with the highest raw recent volume."""
        recent = self._window_counts(hour)
        ranked = sorted(recent.items(), key=lambda kv: (-kv[1], kv[0]))
        return [topic for topic, __ in ranked[:k]]

    def all_topics_seen(self) -> set[str]:
        """Every topic that has appeared in any recorded hour."""
        seen: set[str] = set()
        for counts in self._counts.values():
            seen.update(counts)
        return seen


#: Default platform topic names (news-style trends, distinct from hashtags).
DEFAULT_TOPICS: tuple[str, ...] = tuple(
    f"topic_{name}"
    for name in (
        "election", "worldcup", "oscars", "earthquake", "launch", "strike",
        "summit", "derby", "eclipse", "festival", "merger", "outage",
        "transfer", "premiere", "protest", "rally", "verdict", "storm",
        "championship", "keynote", "recall", "expo", "heatwave", "budget",
    )
)
