"""Synthetic profile images.

The clustering stage of ground-truth labeling (Section IV-B) groups
accounts whose profile images are near-duplicates under dHash.  To give
that code real pixels to hash, the simulator stores small grayscale
images (numpy uint8 arrays) in an :class:`ImageStore`:

* normal users get independently drawn random images (smooth random
  fields, so dHash signatures are well spread);
* campaign accounts share a per-campaign base image with light noise
  (spam campaigns reuse artwork with small edits [13]), so their dHash
  Hamming distances fall under the paper's threshold of 5.
"""

from __future__ import annotations

import numpy as np

#: Side length of stored profile images.  dHash later downsamples to 9x9.
IMAGE_SIZE = 32

#: Image id reserved for the platform's default avatar ("egg").
DEFAULT_IMAGE_ID = 0


def _smooth_random_image(rng: np.random.Generator, size: int) -> np.ndarray:
    """A random low-frequency grayscale image.

    Low-pass filtering (block upsampling of a coarse grid) ensures the
    image has structure at the 9x9 scale dHash inspects, instead of
    pure noise that would hash to near-random bits.
    """
    coarse = rng.uniform(0, 255, size=(8, 8))
    factor = size // 8
    image = np.kron(coarse, np.ones((factor, factor)))
    image += rng.normal(0, 4, size=image.shape)
    return np.clip(image, 0, 255).astype(np.uint8)


def perturb_image(
    base: np.ndarray, rng: np.random.Generator, noise_std: float = 3.0
) -> np.ndarray:
    """A lightly edited copy of ``base`` (campaign-style reuse)."""
    noisy = base.astype(np.float64) + rng.normal(0, noise_std, size=base.shape)
    return np.clip(noisy, 0, 255).astype(np.uint8)


class ImageStore:
    """Registry of profile images keyed by integer image id.

    Id 0 is the platform default avatar; accounts using it have
    ``default_profile_image=True`` in their profiles.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._images: dict[int, np.ndarray] = {
            DEFAULT_IMAGE_ID: np.full(
                (IMAGE_SIZE, IMAGE_SIZE), 128, dtype=np.uint8
            )
        }
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._images)

    def get(self, image_id: int) -> np.ndarray:
        """Fetch the pixels of an image id.

        Raises:
            KeyError: if the id was never registered.
        """
        return self._images[image_id]

    def add(self, image: np.ndarray) -> int:
        """Register explicit pixels and return the new image id."""
        image_id = self._next_id
        self._next_id += 1
        self._images[image_id] = image
        return image_id

    def new_random_image(self) -> int:
        """Create and register an independent random avatar."""
        return self.add(_smooth_random_image(self._rng, IMAGE_SIZE))

    def new_campaign_base(self) -> int:
        """Create and register a campaign's shared base artwork."""
        return self.new_random_image()

    def new_campaign_variant(self, base_id: int, noise_std: float = 3.0) -> int:
        """Register a lightly perturbed copy of a campaign base image."""
        variant = perturb_image(self.get(base_id), self._rng, noise_std)
        return self.add(variant)
