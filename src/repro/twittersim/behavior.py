"""Behavioral models: tweet sources, kinds, and reaction delays.

These distributions back three of the paper's 58 features directly:

* *tweet source distribution* — normal users post mostly from web or
  mobile clients, while automated spam accounts skew heavily toward
  third-party clients;
* *tweet status distribution* — normal activity mixes tweets, retweets
  and quotes; spam mentions are almost always original tweets;
* *mention time* — normal users take minutes-to-hours to read and react
  to a post; spammers react within seconds-to-minutes because they
  target victims without reading content (Section IV-A).
"""

from __future__ import annotations

import numpy as np

from .entities import TweetKind, TweetSource

_SOURCES = (
    TweetSource.WEB,
    TweetSource.MOBILE,
    TweetSource.THIRD_PARTY,
    TweetSource.OTHER,
)

#: P(source) for organic accounts: mobile-first, little automation.
NORMAL_SOURCE_PROBS = np.array([0.30, 0.55, 0.10, 0.05])

#: P(source) for spam accounts: automation tooling dominates.
SPAMMER_SOURCE_PROBS = np.array([0.08, 0.12, 0.72, 0.08])

_KINDS = (TweetKind.TWEET, TweetKind.RETWEET, TweetKind.QUOTE)

#: P(kind) for organic posts.
NORMAL_KIND_PROBS = np.array([0.72, 0.17, 0.11])

#: P(kind) for spam posts: templated original tweets.
SPAMMER_KIND_PROBS = np.array([0.90, 0.06, 0.04])


# Cumulative thresholds as plain Python floats: the draw below is a
# 3-4 way comparison chain, which beats even the ndarray.searchsorted
# method (these run once or twice per finalized tweet).  The chain
# picks the first threshold >= r — exactly searchsorted(side="left").
_NORMAL_SOURCE_T = tuple(np.cumsum(NORMAL_SOURCE_PROBS).tolist())
_SPAMMER_SOURCE_T = tuple(np.cumsum(SPAMMER_SOURCE_PROBS).tolist())
_NORMAL_KIND_T = tuple(np.cumsum(NORMAL_KIND_PROBS).tolist())
_SPAMMER_KIND_T = tuple(np.cumsum(SPAMMER_KIND_PROBS).tolist())


def draw_source(rng: np.random.Generator, spammer: bool) -> TweetSource:
    """Sample a client source label for a new tweet."""
    t = _SPAMMER_SOURCE_T if spammer else _NORMAL_SOURCE_T
    r = rng.random()
    if r <= t[0]:
        return _SOURCES[0]
    if r <= t[1]:
        return _SOURCES[1]
    return _SOURCES[2] if r <= t[2] else _SOURCES[3]


def draw_kind(rng: np.random.Generator, spammer: bool) -> TweetKind:
    """Sample a tweet/retweet/quote status for a new post."""
    t = _SPAMMER_KIND_T if spammer else _NORMAL_KIND_T
    r = rng.random()
    if r <= t[0]:
        return _KINDS[0]
    return _KINDS[1] if r <= t[1] else _KINDS[2]


#: Median organic reaction delay to a post (seconds): ~20 minutes.
NORMAL_REPLY_MEDIAN_S = 20 * 60.0

#: Log-scale spread of organic reply delays.
NORMAL_REPLY_SIGMA = 1.1

#: Log-scale spread of spam reaction delays.
SPAM_REACTION_SIGMA = 0.7


def organic_reply_delay(rng: np.random.Generator) -> float:
    """Seconds between a post and an organic reply to it."""
    return float(
        rng.lognormal(mean=np.log(NORMAL_REPLY_MEDIAN_S), sigma=NORMAL_REPLY_SIGMA)
    )


def spam_reaction_delay(
    rng: np.random.Generator, median_s: float
) -> float:
    """Seconds between a victim's post and the spam mention reacting."""
    return float(rng.lognormal(mean=np.log(median_s), sigma=SPAM_REACTION_SIGMA))
