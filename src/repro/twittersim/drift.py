"""Spammer drift (Section IV-C / future work).

The paper notes that spammers' tastes and content change over time
("Twitter spammer drift"), which degrades deployed detectors trained on
stale ground truth.  This module applies a drift event to the live
population: every campaign rotates its content class and templates,
slows its reaction times toward human-like latencies, and moves from
automation clients to mainstream ones — the stealth adaptations the
drift literature [6] documents.  Victim tastes can drift too, via a
new :class:`TasteWeights` handed to the engine.
"""

from __future__ import annotations

import numpy as np

from .campaigns import TasteWeights
from .population import Population

#: Cyclic rotation of content classes under drift.
_CLASS_ROTATION = {
    "money": "promo",
    "promo": "deception",
    "deception": "adult",
    "adult": "money",
}


def apply_spammer_drift(
    population: Population,
    rng: np.random.Generator | None = None,
    reaction_slowdown: float = 6.0,
) -> int:
    """Mutate all live campaigns to their post-drift behavior.

    Every campaign rotates to a fresh content class with brand-new
    templates, reacts ``reaction_slowdown``x slower (mimicking human
    latency), and goes stealthy (mainstream client sources).  Lone
    spammers rotate their personal templates likewise.

    Returns:
        Number of campaigns drifted.
    """
    rng = rng or population.rng
    for campaign in population.campaigns:
        campaign.keyword_class = _CLASS_ROTATION[campaign.keyword_class]
        # Post-drift campaigns diversify heavily: many more templates
        # per campaign, so content repetition — the strongest surviving
        # signal — fades too.
        base = int(rng.integers(2_000, 3_000))
        campaign.template_ids = tuple(
            base + i for i in range(8 * len(campaign.template_ids))
        )
        campaign.reaction_median_s *= reaction_slowdown
        campaign.stealthy = True
    for uid in list(population.lone_spammer_templates):
        keyword_class, __ = population.lone_spammer_templates[uid]
        population.lone_spammer_templates[uid] = (
            _CLASS_ROTATION[keyword_class],
            int(rng.integers(2_000, 3_000)),
        )
    return len(population.campaigns)


def drifted_taste_weights(seed: int = 0) -> TasteWeights:
    """A post-drift taste: spammers pivot toward audience size and
    away from list activity (an example pivot; the pseudo-honeypot's
    PGE feedback loop is what must track it)."""
    return TasteWeights(
        lists_per_day=1.2,
        followers=3.4,
        total_friends_followers=2.8,
        listed_count=0.8,
        friends=1.8,
    )
