"""Deterministic, time-ordered identifier generation.

Twitter issues "snowflake" ids whose high bits encode the creation
timestamp, making ids sortable by time.  The simulator mimics that
property: tweet and user ids are ``(timestamp_ms << 16) | sequence`` so
that sorting by id equals sorting by creation time, which several
behavioral features (average tweet interval, mention time) and tests
rely on.
"""

from __future__ import annotations


class SnowflakeGenerator:
    """Issues unique, strictly increasing, time-ordered integer ids."""

    _SEQUENCE_BITS = 16
    _SEQUENCE_MASK = (1 << _SEQUENCE_BITS) - 1

    def __init__(self) -> None:
        self._last_ms = -1
        self._sequence = 0

    def next_id(self, timestamp: float) -> int:
        """Return a fresh id for an event at simulation time ``timestamp``.

        Ids issued for non-decreasing timestamps are strictly increasing.
        Timestamps may be negative (pre-simulation account creation).
        """
        ms = int(timestamp * 1000)
        if ms < self._last_ms:
            # Never let ids go backwards even if callers hand us an
            # out-of-order timestamp (e.g. backdated account creation
            # interleaved with live tweets): clamp to the newest seen.
            ms = self._last_ms
        if ms == self._last_ms:
            self._sequence += 1
            if self._sequence > self._SEQUENCE_MASK:
                ms += 1
                self._sequence = 0
        else:
            self._sequence = 0
        self._last_ms = ms
        # Offset keeps ids positive even for timestamps far in the past.
        return ((ms + (1 << 40)) << self._SEQUENCE_BITS) | self._sequence

    @classmethod
    def timestamp_of(cls, snowflake: int) -> float:
        """Recover the (approximate) creation time in seconds from an id."""
        ms = (snowflake >> cls._SEQUENCE_BITS) - (1 << 40)
        return ms / 1000.0
