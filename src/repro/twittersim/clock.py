"""Simulation clock.

All platform activity is timestamped with a single monotonically
increasing simulation time measured in *seconds*.  The pseudo-honeypot
system thinks in *hours* (nodes are re-selected every hour; PGE is
spammers per node per hour), so the clock exposes hour arithmetic too.

The epoch is arbitrary; by convention hour 0 starts at t=0.  Account
creation dates may be negative (accounts that pre-date the simulation).
"""

from __future__ import annotations

SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


class SimClock:
    """A monotonically advancing simulation clock.

    The clock refuses to move backwards: the engine, streaming API and
    suspension process all rely on event timestamps being non-decreasing.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def hour(self) -> int:
        """Index of the current simulation hour (floor of now / 3600)."""
        return int(self._now // SECONDS_PER_HOUR)

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time.

        Raises:
            ValueError: if ``seconds`` is negative.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative {seconds!r}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Raises:
            ValueError: if ``timestamp`` is in the past.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def advance_hours(self, hours: float) -> float:
        """Move the clock forward by ``hours`` hours."""
        return self.advance(hours * SECONDS_PER_HOUR)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.1f}s, hour={self.hour})"


def hours(n: float) -> float:
    """Convert hours to seconds."""
    return n * SECONDS_PER_HOUR


def days(n: float) -> float:
    """Convert days to seconds."""
    return n * SECONDS_PER_DAY
