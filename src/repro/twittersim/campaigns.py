"""Spam campaigns and the spammer taste model.

The paper's central empirical finding (Tables V/VI, Figures 3-5) is that
spammers preferentially target accounts with particular attributes —
high list activity, large audiences, heavy favoriting, trending-up
topics, social/general hashtags.  The simulator encodes that preference
as an explicit *taste model*: a scoring function over victim profiles
that drives spammers' victim selection.  The pseudo-honeypot pipeline
never sees this model; it must rediscover the preference ordering from
captured data, which is exactly the paper's reverse-engineering loop.

A campaign is a coordinated set of fake accounts sharing registration
artifacts (naming pattern, base profile image, bio template) and
content templates — the redundancy the clustering-based labeler of
Section IV-B exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .entities import AccountState, TweetSource
from .hashtags import HashtagCategory


def _saturate(x: float) -> float:
    """Smooth saturation x/(1+x): monotone, bounded, unitless."""
    return x / (1.0 + x)


@dataclass(frozen=True)
class TasteWeights:
    """Weights of the spammer taste model over victim profile attributes.

    Scale parameters are the attribute values at which the saturating
    response reaches one half; they are aligned with the top sample
    values of Table II so that the largest sample bins are the most
    attractive, reproducing the monotone trends of Figure 3 and the
    PGE ranking of Table VI (list activity first, audience size next,
    favorites/statuses after, friend:follower ratio last).
    """

    lists_per_day: float = 4.2
    followers: float = 1.7
    total_friends_followers: float = 1.9
    listed_count: float = 1.5
    friends: float = 1.4
    favourites: float = 1.1
    statuses: float = 0.6
    inverse_ratio: float = 0.55
    #: Sharpness of victim selection: sampling weight = score ** concentration.
    #: Values > 1 concentrate spam on the most attractive accounts, which is
    #: what the paper's heavily skewed Table V implies (one attribute's nodes
    #: garner 80% of all spammers).
    concentration: float = 4.0
    lists_per_day_scale: float = 1.1
    followers_scale: float = 6000.0
    total_scale: float = 18000.0
    listed_scale: float = 300.0
    friends_scale: float = 6000.0
    favourites_scale: float = 120000.0
    statuses_scale: float = 120000.0
    inverse_ratio_scale: float = 6.0


#: Multiplier applied when a victim's recent post used a hashtag of the
#: given category.  Ordering mirrors Figure 4: social and general capture
#: the most spammers; tech/business have the highest spammer *ratios*.
HASHTAG_TASTE: dict[HashtagCategory, float] = {
    HashtagCategory.SOCIAL: 1.55,
    HashtagCategory.GENERAL: 1.45,
    HashtagCategory.TECH: 1.40,
    HashtagCategory.BUSINESS: 1.30,
    HashtagCategory.ENTERTAINMENT: 1.22,
    HashtagCategory.EDUCATION: 1.12,
    HashtagCategory.ENVIRONMENT: 1.06,
    HashtagCategory.ASTROLOGY: 1.00,
}

#: Multiplier for the trending status of a victim's recent topic.
#: Ordering mirrors Figure 5: trending-up > popular > trending-down >
#: no trending topic.
TRENDING_TASTE: dict[str, float] = {
    "trending_up": 2.4,
    "popular": 2.0,
    "trending_down": 1.7,
    "none": 1.0,
}

#: Account age (days) at which spammer interest peaks (Figure 3(e)).
AGE_PEAK_DAYS = 1000.0


class SpammerTasteModel:
    """Scores how attractive a victim account is to spammers.

    The total score multiplies a profile-based base score, an age bell
    curve centered near 1,000 days, and context multipliers for the
    hashtag category and trending status of the victim's recent post.
    """

    def __init__(self, weights: TasteWeights | None = None) -> None:
        self.weights = weights or TasteWeights()

    def profile_score(self, account: AccountState, now: float) -> float:
        """Base attractiveness from profile attributes alone."""
        w = self.weights
        age = max((now - account.created_at) / 86400.0, 1.0)
        lists_per_day = account.listed_count / age
        total = account.friends_count + account.followers_count
        ratio = account.friends_count / max(account.followers_count, 1)
        inverse_ratio = 1.0 / max(ratio, 1e-3)
        score = (
            w.lists_per_day * _saturate(lists_per_day / w.lists_per_day_scale)
            + w.followers * _saturate(account.followers_count / w.followers_scale)
            + w.total_friends_followers * _saturate(total / w.total_scale)
            + w.listed_count * _saturate(account.listed_count / w.listed_scale)
            + w.friends * _saturate(account.friends_count / w.friends_scale)
            + w.favourites * _saturate(account.favourites_count / w.favourites_scale)
            + w.statuses * _saturate(account.statuses_count / w.statuses_scale)
            + w.inverse_ratio * _saturate(inverse_ratio / w.inverse_ratio_scale)
        )
        # Age response: rises toward ~1,000 days then declines (Fig 3e).
        # The multiplier stays in a moderate band (0.55-1.45): strong
        # enough that the age peak is visible over counter accumulation,
        # weak enough not to dominate the attribute preferences.
        age_factor = math.exp(-(math.log(age / AGE_PEAK_DAYS) ** 2) / 2.0)
        return score * (0.55 + 0.9 * age_factor)

    def profile_score_batch(
        self,
        now: float,
        created_at: np.ndarray,
        friends: np.ndarray,
        followers: np.ndarray,
        listed: np.ndarray,
        favourites: np.ndarray,
        statuses: np.ndarray,
    ) -> np.ndarray:
        """Column-wise :meth:`profile_score` over account batches.

        The attribute terms are rational arithmetic (+, -, *, /), which
        IEEE-754 evaluates identically element-wise and scalar, so the
        vector path is bitwise-equal to the scalar one.  The age bell
        curve is transcendental — ``np.log``/``np.exp`` drift from
        ``math.log``/``math.exp`` in the last ulp — so it stays a
        scalar loop over the (much shorter) batch.
        """
        w = self.weights
        age = np.maximum((now - created_at) / 86400.0, 1.0)
        lists_per_day = listed / age
        total = friends + followers
        ratio = friends / np.maximum(followers, 1)
        inverse_ratio = 1.0 / np.maximum(ratio, 1e-3)
        score = (
            w.lists_per_day * _saturate(lists_per_day / w.lists_per_day_scale)
            + w.followers * _saturate(followers / w.followers_scale)
            + w.total_friends_followers * _saturate(total / w.total_scale)
            + w.listed_count * _saturate(listed / w.listed_scale)
            + w.friends * _saturate(friends / w.friends_scale)
            + w.favourites * _saturate(favourites / w.favourites_scale)
            + w.statuses * _saturate(statuses / w.statuses_scale)
            + w.inverse_ratio * _saturate(inverse_ratio / w.inverse_ratio_scale)
        )
        out = np.empty(len(score), dtype=np.float64)
        age_list = age.tolist()
        score_list = score.tolist()
        for i, (age_i, score_i) in enumerate(zip(age_list, score_list)):
            age_factor = math.exp(
                -(math.log(age_i / AGE_PEAK_DAYS) ** 2) / 2.0
            )
            out[i] = score_i * (0.55 + 0.9 * age_factor)
        return out

    def context_multiplier(
        self,
        hashtag_category: HashtagCategory | None,
        trending_status: str,
    ) -> float:
        """Multiplier from the victim's recent posting context."""
        hashtag_factor = (
            HASHTAG_TASTE[hashtag_category] if hashtag_category else 1.0
        )
        trending_factor = TRENDING_TASTE.get(trending_status, 1.0)
        return hashtag_factor * trending_factor

    def score(
        self,
        account: AccountState,
        now: float,
        hashtag_category: HashtagCategory | None = None,
        trending_status: str = "none",
    ) -> float:
        """Full attractiveness score of a victim in context."""
        return self.profile_score(account, now) * self.context_multiplier(
            hashtag_category, trending_status
        )

    def sampling_weight(
        self,
        account: AccountState,
        now: float,
        hashtag_category: HashtagCategory | None = None,
        trending_status: str = "none",
    ) -> float:
        """Victim-selection weight.

        Profile taste is raised to the concentration exponent (spammers
        strongly prefer the best-matching profiles); the posting-context
        multiplier enters linearly.
        """
        return (
            self.profile_score(account, now) ** self.weights.concentration
        ) * self.context_multiplier(hashtag_category, trending_status)


@dataclass
class Campaign:
    """A coordinated spam campaign.

    Attributes:
        campaign_id: stable integer id.
        keyword_class: content class ('money', 'adult', 'promo',
            'deception') used by its tweet templates.
        name_prefix: shared screen-name prefix (automatic registration).
        name_digits: number of digits appended to the prefix.
        base_image_id: id of the shared profile artwork in the image
            store; member avatars are perturbed copies.
        description_words: shared bio template words.
        template_ids: ids of its repetitive tweet templates.
        actions_per_hour: mean spam mentions per live member per hour.
        reaction_median_s: median delay between a victim's post and the
            spam mention reacting to it (spammers react fast, §IV-A).
        member_ids: user ids of current members.
    """

    campaign_id: int
    keyword_class: str
    name_prefix: str
    name_digits: int
    base_image_id: int
    description_words: tuple[str, ...]
    template_ids: tuple[int, ...]
    actions_per_hour: float
    reaction_median_s: float
    member_ids: list[int] = field(default_factory=list)
    #: Post-drift stealth: mainstream client sources instead of
    #: automation tooling (see :mod:`repro.twittersim.drift`).
    stealthy: bool = False

    def pick_template(self, rng: np.random.Generator) -> int:
        """Choose one of the campaign's repetitive templates."""
        return int(self.template_ids[rng.integers(0, len(self.template_ids))])


def make_campaign(
    campaign_id: int,
    rng: np.random.Generator,
    base_image_id: int,
    description_words: tuple[str, ...],
    actions_min: float = 0.03,
    actions_max: float = 0.12,
) -> Campaign:
    """Draw a campaign's shared artifacts and behavioral parameters."""
    keyword_class = str(
        rng.choice(("money", "adult", "promo", "deception"))
    )
    prefix_pool = (
        "promo", "deal", "win", "cash", "hot", "click", "mega", "bonus",
        "gift", "lucky",
    )
    prefix = str(rng.choice(prefix_pool)) + str(rng.choice(list("abcdefgh")))
    n_templates = int(rng.integers(2, 5))
    template_base = int(rng.integers(0, 1000))
    return Campaign(
        campaign_id=campaign_id,
        keyword_class=keyword_class,
        name_prefix=prefix,
        name_digits=int(rng.integers(4, 7)),
        base_image_id=base_image_id,
        description_words=description_words,
        template_ids=tuple(template_base + i for i in range(n_templates)),
        actions_per_hour=float(rng.uniform(actions_min, actions_max)),
        reaction_median_s=float(rng.uniform(15.0, 90.0)),
    )
