"""Columnar account storage: the million-account data plane.

The object data plane (one :class:`~repro.twittersim.entities.AccountState`
per account) tops out around 10^4 accounts: every per-hour engine phase
chases Python attributes across the whole population.  This module
stores the mutable account state as a numpy struct-of-arrays keyed by
dense row index, so the hot engine phases (activity draws, suspension
hazard, counter growth, victim scoring) run as vectorized column
operations, while thin :class:`AccountView` objects preserve the exact
``AccountState`` attribute API for everything else (REST surface,
feature extractors, campaigns, tests).

Determinism contract: views return plain Python ``int``/``float``/
``bool`` scalars, and every vectorized engine path consumes the master
RNG in exactly the same order as the per-object code it replaces, so a
columnar run is bitwise identical to an object-mode run of the same
seed (enforced by the parity suite in
``tests/twittersim/test_columnar_parity.py``).

Layout summary (see DESIGN.md §14):

- numeric/bool state: capacity-doubling numpy arrays (``float64`` /
  ``int64`` / ``bool``), one row per account, append-only;
- identity strings (screen name, display name, description): plain
  Python lists, row-aligned;
- user id -> row: dense dict (ids are allocated densely by the
  population builder, but operator-registered accounts may carry
  arbitrary ids, so the indirection stays);
- follow graph: int32 CSR arrays over *rows* (:class:`CSRGraph`);
- per-hour tweet records: :class:`TweetColumns` struct-of-arrays, the
  wire format of the sharded hour loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .entities import AccountState, Tweet, TweetKind, TweetSource, UserProfile

_NEG_INF = float("-inf")

#: (name, dtype, fill) of every numeric/bool account column.
ACCOUNT_NUMERIC_COLUMNS: tuple[tuple[str, np.dtype, float], ...] = (
    ("user_id", np.dtype(np.int64), 0),
    ("created_at", np.dtype(np.float64), 0.0),
    ("friends_count", np.dtype(np.int64), 0),
    ("followers_count", np.dtype(np.int64), 0),
    ("statuses_count", np.dtype(np.int64), 0),
    ("listed_count", np.dtype(np.int64), 0),
    ("favourites_count", np.dtype(np.int64), 0),
    ("profile_image_id", np.dtype(np.int64), 0),
    ("verified", np.dtype(np.bool_), False),
    ("default_profile_image", np.dtype(np.bool_), False),
    ("suspended", np.dtype(np.bool_), False),
    ("last_post_at", np.dtype(np.float64), _NEG_INF),
    ("last_mentioned_at", np.dtype(np.float64), _NEG_INF),
)

#: Row-aligned Python string columns.
ACCOUNT_STRING_COLUMNS: tuple[str, ...] = (
    "screen_name",
    "name",
    "description",
)


class AccountColumns:
    """Struct-of-arrays store of mutable account state.

    Arrays are over-allocated (capacity doubling) so appends are
    amortized O(1); ``n`` is the live row count and every public array
    accessor returns the ``[:n]`` slice, which aliases the backing
    storage — vectorized writers mutate account state in place.
    """

    __slots__ = (
        "n",
        "_capacity",
        "_arrays",
        "screen_name",
        "name",
        "description",
    )

    def __init__(self, capacity: int = 1024) -> None:
        self.n = 0
        self._capacity = max(int(capacity), 1)
        self._arrays: dict[str, np.ndarray] = {
            name: np.full(self._capacity, fill, dtype=dtype)
            for name, dtype, fill in ACCOUNT_NUMERIC_COLUMNS
        }
        self.screen_name: list[str] = []
        self.name: list[str] = []
        self.description: list[str] = []

    # -- growth -----------------------------------------------------------

    def _grow_to(self, capacity: int) -> None:
        new_capacity = self._capacity
        while new_capacity < capacity:
            new_capacity *= 2
        for name, dtype, fill in ACCOUNT_NUMERIC_COLUMNS:
            grown = np.full(new_capacity, fill, dtype=dtype)
            grown[: self.n] = self._arrays[name][: self.n]
            self._arrays[name] = grown
        self._capacity = new_capacity

    def append_state(self, account: AccountState) -> int:
        """Append one account's fields; returns its row index."""
        row = self.n
        if row >= self._capacity:
            self._grow_to(row + 1)
        arrays = self._arrays
        arrays["user_id"][row] = account.user_id
        arrays["created_at"][row] = account.created_at
        arrays["friends_count"][row] = account.friends_count
        arrays["followers_count"][row] = account.followers_count
        arrays["statuses_count"][row] = account.statuses_count
        arrays["listed_count"][row] = account.listed_count
        arrays["favourites_count"][row] = account.favourites_count
        arrays["profile_image_id"][row] = account.profile_image_id
        arrays["verified"][row] = account.verified
        arrays["default_profile_image"][row] = account.default_profile_image
        arrays["suspended"][row] = account.suspended
        arrays["last_post_at"][row] = account.last_post_at
        arrays["last_mentioned_at"][row] = account.last_mentioned_at
        self.screen_name.append(account.screen_name)
        self.name.append(account.name)
        self.description.append(account.description)
        self.n = row + 1
        return row

    # -- array access -----------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """The live ``[:n]`` slice of a numeric column (aliasing)."""
        return self._arrays[name][: self.n]

    def snapshot_rows(self, rows: list[int]) -> list[UserProfile]:
        """Profile snapshots of many rows with hoisted column lookups.

        Identical output to per-row :meth:`AccountView.snapshot`; the
        batch form serves ``users/lookup``-style bulk reads without
        paying a view resolution and ten dict lookups per row.
        """
        arrays = self._arrays
        user_id = arrays["user_id"]
        created_at = arrays["created_at"]
        friends = arrays["friends_count"]
        followers = arrays["followers_count"]
        statuses = arrays["statuses_count"]
        listed = arrays["listed_count"]
        favourites = arrays["favourites_count"]
        verified = arrays["verified"]
        default_image = arrays["default_profile_image"]
        image_id = arrays["profile_image_id"]
        screen_name = self.screen_name
        name = self.name
        description = self.description
        return [
            UserProfile(
                user_id.item(row),
                screen_name[row],
                name[row],
                created_at.item(row),
                description[row],
                friends.item(row),
                followers.item(row),
                statuses.item(row),
                listed.item(row),
                favourites.item(row),
                verified.item(row),
                default_image.item(row),
                image_id.item(row),
            )
            for row in rows
        ]

    def __getattr__(self, name: str) -> np.ndarray:
        # Numeric columns resolve as attributes: ``cols.suspended``.
        try:
            arrays = object.__getattribute__(self, "_arrays")
            return arrays[name][: self.n]
        except (AttributeError, KeyError):
            raise AttributeError(name) from None


class AccountView:
    """A thin object view of one account row.

    Duck-types :class:`~repro.twittersim.entities.AccountState`: every
    attribute read returns a plain Python scalar (so downstream
    formatting, hashing, and JSON stay bitwise identical to object
    mode) and every attribute write lands in the backing column.
    """

    __slots__ = ("_cols", "_row")

    def __init__(self, cols: AccountColumns, row: int) -> None:
        object.__setattr__(self, "_cols", cols)
        object.__setattr__(self, "_row", row)

    # Numeric fields --------------------------------------------------------

    @property
    def user_id(self) -> int:
        return int(self._cols._arrays["user_id"][self._row])

    @property
    def created_at(self) -> float:
        return float(self._cols._arrays["created_at"][self._row])

    @property
    def friends_count(self) -> int:
        return int(self._cols._arrays["friends_count"][self._row])

    @property
    def followers_count(self) -> int:
        return int(self._cols._arrays["followers_count"][self._row])

    @property
    def statuses_count(self) -> int:
        return int(self._cols._arrays["statuses_count"][self._row])

    @property
    def listed_count(self) -> int:
        return int(self._cols._arrays["listed_count"][self._row])

    @property
    def favourites_count(self) -> int:
        return int(self._cols._arrays["favourites_count"][self._row])

    @property
    def profile_image_id(self) -> int:
        return int(self._cols._arrays["profile_image_id"][self._row])

    @property
    def verified(self) -> bool:
        return bool(self._cols._arrays["verified"][self._row])

    @property
    def default_profile_image(self) -> bool:
        return bool(self._cols._arrays["default_profile_image"][self._row])

    @property
    def suspended(self) -> bool:
        return bool(self._cols._arrays["suspended"][self._row])

    @property
    def last_post_at(self) -> float:
        return float(self._cols._arrays["last_post_at"][self._row])

    @property
    def last_mentioned_at(self) -> float:
        return float(self._cols._arrays["last_mentioned_at"][self._row])

    # String fields ---------------------------------------------------------

    @property
    def screen_name(self) -> str:
        return self._cols.screen_name[self._row]

    @property
    def name(self) -> str:
        return self._cols.name[self._row]

    @property
    def description(self) -> str:
        return self._cols.description[self._row]

    # Writes ----------------------------------------------------------------

    def __setattr__(self, key: str, value) -> None:
        cols = self._cols
        arrays = cols._arrays
        if key in arrays:
            arrays[key][self._row] = value
        elif key in ACCOUNT_STRING_COLUMNS:
            getattr(cols, key)[self._row] = value
        else:
            raise AttributeError(f"unknown account field {key!r}")

    # AccountState API -------------------------------------------------------

    def snapshot(self) -> UserProfile:
        """Freeze the current row into a public profile snapshot.

        ``ndarray.item(row)`` converts straight to a Python scalar in
        one C call, skipping the intermediate numpy scalar that
        ``int(array[row])`` would allocate — this method runs once per
        finalized tweet and once per REST profile lookup, so the
        constant matters.  Positional construction matches the
        :class:`UserProfile` field order.
        """
        cols = self._cols
        arrays = cols._arrays
        row = self._row
        return UserProfile(
            arrays["user_id"].item(row),
            cols.screen_name[row],
            cols.name[row],
            arrays["created_at"].item(row),
            cols.description[row],
            arrays["friends_count"].item(row),
            arrays["followers_count"].item(row),
            arrays["statuses_count"].item(row),
            arrays["listed_count"].item(row),
            arrays["favourites_count"].item(row),
            arrays["verified"].item(row),
            arrays["default_profile_image"].item(row),
            arrays["profile_image_id"].item(row),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccountView(row={self._row}, user_id={self.user_id}, "
            f"screen_name={self.screen_name!r})"
        )


class AccountMap:
    """Dict-like ``user_id -> AccountView`` facade over the columns.

    Supports exactly the mapping surface the codebase uses on
    ``Population.accounts``: ``[]``, ``.get``, ``in``, ``len``,
    iteration, ``keys``/``values``/``items``.  Views are cached per
    user id, so repeated lookups return the identical object.
    """

    __slots__ = ("_cols", "_row_of", "_views")

    def __init__(self, cols: AccountColumns, row_of: dict[int, int]) -> None:
        self._cols = cols
        self._row_of = row_of
        self._views: dict[int, AccountView] = {}

    def view(self, user_id: int) -> AccountView:
        view = self._views.get(user_id)
        if view is None:
            view = AccountView(self._cols, self._row_of[user_id])
            self._views[user_id] = view
        return view

    def __getitem__(self, user_id: int) -> AccountView:
        return self.view(user_id)

    def get(self, user_id: int, default=None):
        if user_id not in self._row_of:
            return default
        return self.view(user_id)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._row_of

    def __len__(self) -> int:
        return len(self._row_of)

    def __iter__(self):
        return iter(self._row_of)

    def keys(self):
        return self._row_of.keys()

    def values(self):
        for user_id in self._row_of:
            yield self.view(user_id)

    def items(self):
        for user_id in self._row_of:
            yield user_id, self.view(user_id)


# ---------------------------------------------------------------------------
# Follow graph (CSR)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CSRGraph:
    """Compressed sparse row adjacency over dense int32 node indices.

    ``neighbors(i)`` is ``indices[indptr[i]:indptr[i+1]]`` — here used
    for *follower* (predecessor) adjacency, in edge-insertion order, so
    uniform follower sampling consumes the RNG exactly like the object
    graph's list-of-predecessors did.
    """

    indptr: np.ndarray
    indices: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        return int(self.indptr[-1])

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor indices of ``node`` (int32 array view)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    @classmethod
    def from_adjacency(
        cls, neighbor_lists: list[list[int]], n_nodes: int | None = None
    ) -> "CSRGraph":
        """Pack per-node neighbor lists (order preserved) into CSR."""
        if n_nodes is None:
            n_nodes = len(neighbor_lists)
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        for i, neighbors in enumerate(neighbor_lists):
            indptr[i + 1] = indptr[i] + len(neighbors)
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        for i, neighbors in enumerate(neighbor_lists):
            indices[indptr[i] : indptr[i + 1]] = neighbors
        return cls(indptr=indptr, indices=indices)


# ---------------------------------------------------------------------------
# Per-hour tweet records
# ---------------------------------------------------------------------------

_KIND_BY_CODE = tuple(TweetKind)
_CODE_BY_KIND = {kind: code for code, kind in enumerate(_KIND_BY_CODE)}
_SOURCE_BY_CODE = tuple(TweetSource)
_CODE_BY_SOURCE = {src: code for code, src in enumerate(_SOURCE_BY_CODE)}


class TweetColumns:
    """Struct-of-arrays buffer of one hour's proto-tweet records.

    The sharded hour loop's wire format: workers emit rows (no tweet
    ids — snowflake ids are a parent-side resource) and the parent
    materializes :class:`~repro.twittersim.entities.Tweet` objects
    after the deterministic merge.  Numeric state is numpy; texts,
    hashtags, and mention tuples stay Python objects (they are
    variable-length and already interned upstream).
    """

    __slots__ = (
        "created_at",
        "kind_code",
        "source_code",
        "spam",
        "user",
        "text",
        "hashtags",
        "mentions",
        "topic",
        "reply_to_id",
        "reply_to_created_at",
    )

    def __init__(self) -> None:
        self.created_at: list[float] = []
        self.kind_code: list[int] = []
        self.source_code: list[int] = []
        self.spam: list[bool] = []
        self.user: list[UserProfile] = []
        self.text: list[str] = []
        self.hashtags: list[tuple[str, ...]] = []
        self.mentions: list[tuple] = []
        self.topic: list[str | None] = []
        self.reply_to_id: list[int | None] = []
        self.reply_to_created_at: list[float | None] = []

    def __len__(self) -> int:
        return len(self.created_at)

    def append(
        self,
        created_at: float,
        user: UserProfile,
        text: str,
        kind: TweetKind,
        source: TweetSource,
        spam: bool,
        hashtags: tuple[str, ...] = (),
        mentions: tuple = (),
        topic: str | None = None,
        reply_to_id: int | None = None,
        reply_to_created_at: float | None = None,
    ) -> None:
        self.created_at.append(created_at)
        self.kind_code.append(_CODE_BY_KIND[kind])
        self.source_code.append(_CODE_BY_SOURCE[source])
        self.spam.append(spam)
        self.user.append(user)
        self.text.append(text)
        self.hashtags.append(hashtags)
        self.mentions.append(mentions)
        self.topic.append(topic)
        self.reply_to_id.append(reply_to_id)
        self.reply_to_created_at.append(reply_to_created_at)

    def created_at_array(self) -> np.ndarray:
        return np.asarray(self.created_at, dtype=np.float64)

    def materialize(self, index: int, tweet_id: int) -> Tweet:
        """Build the public Tweet record for one row."""
        text = self.text[index]
        return Tweet(
            tweet_id=tweet_id,
            created_at=self.created_at[index],
            user=self.user[index],
            text=text,
            kind=_KIND_BY_CODE[self.kind_code[index]],
            source=_SOURCE_BY_CODE[self.source_code[index]],
            hashtags=self.hashtags[index],
            mentions=self.mentions[index],
            urls=tuple(
                token for token in text.split() if token.startswith("http")
            ),
            topic=self.topic[index],
            in_reply_to_tweet_id=self.reply_to_id[index],
            in_reply_to_created_at=self.reply_to_created_at[index],
        )
