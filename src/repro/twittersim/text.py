"""Synthetic tweet text, screen names, and profile descriptions.

The labeling pipeline (Section IV-B) and content features (Section
IV-A) depend on concrete textual properties: URLs, emoji, digit counts,
repetitive campaign templates, automatic naming patterns, spam keyword
classes, and near-duplicate descriptions.  This module generates text
that actually exhibits those properties, so dHash/MinHash/Σ-sequence
clustering and the 11 rule-based policies operate on realistic input
rather than opaque tokens.
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# Word material
# ---------------------------------------------------------------------------

BENIGN_WORDS: tuple[str, ...] = (
    "great", "day", "coffee", "project", "meeting", "game", "team", "city",
    "weather", "weekend", "family", "dinner", "book", "reading", "travel",
    "photo", "sunset", "morning", "running", "music", "movie", "friends",
    "ideas", "work", "launch", "update", "release", "garden", "recipe",
    "match", "season", "goals", "practice", "studio", "design", "paper",
    "class", "lecture", "review", "podcast", "episode", "festival", "beach",
    "mountain", "train", "flight", "market", "coding", "python", "data",
)

SPAM_MONEY_WORDS: tuple[str, ...] = (
    "free", "cash", "earn", "money", "fast", "easy", "income", "rich",
    "giveaway", "winner", "prize", "bonus", "instant", "guaranteed",
)

SPAM_ADULT_WORDS: tuple[str, ...] = (
    "adult", "hot", "singles", "dating", "webcam", "explicit", "xxx",
)

SPAM_PROMO_WORDS: tuple[str, ...] = (
    "followers", "promo", "discount", "deal", "cheap", "buy", "click",
    "limited", "offer", "sale", "boost", "unlock",
)

SPAM_DECEPTION_WORDS: tuple[str, ...] = (
    "verify", "account", "suspended", "urgent", "confirm", "password",
    "security", "alert", "bank", "refund",
)

EMOJI: tuple[str, ...] = ("😀", "🔥", "🎉", "💰", "❤️", "👍", "😂", "✨", "🚀", "💯")

STOP_WORDS: frozenset[str] = frozenset(
    "a an the and or but if of to in on at for with is are was were be been "
    "i you he she it we they this that my your our其".split()
)

#: Keyword classes the rule-based labeler (Section IV-B) matches on.
SPAM_KEYWORD_CLASSES: dict[str, tuple[str, ...]] = {
    "money": SPAM_MONEY_WORDS,
    "adult": SPAM_ADULT_WORDS,
    "promo": SPAM_PROMO_WORDS,
    "deception": SPAM_DECEPTION_WORDS,
}

#: Domains considered malicious by the URL blacklist the paper's rule 1
#: ("has malicious URL") presupposes.
MALICIOUS_DOMAINS: tuple[str, ...] = (
    "free-cash.example", "win-big.example", "hot-dates.example",
    "cheap-meds.example", "click4gold.example", "getfollowers.example",
)

BENIGN_DOMAINS: tuple[str, ...] = (
    "news.example", "blog.example", "github.example", "photos.example",
    "events.example", "recipes.example",
)


_URL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def make_url(domain: str, rng: np.random.Generator) -> str:
    """Build a shortened-looking URL on the given domain.

    Index draws replace ``rng.choice`` here (and throughout this
    module): ``Generator.choice`` with ``replace=True`` consumes the
    bit stream exactly like ``integers(0, n)``, so the generated text
    is byte-identical while skipping choice's array-dispatch overhead
    — the single hottest cost of tweet synthesis at scale.
    """
    idx = rng.integers(0, len(_URL_ALPHABET), size=7)
    token = "".join(_URL_ALPHABET[i] for i in idx.tolist())
    return f"http://{domain}/{token}"


def is_malicious_url(url: str) -> bool:
    """Blacklist check used by rule-based labeling (rule 1)."""
    return any(domain in url for domain in MALICIOUS_DOMAINS)


# ---------------------------------------------------------------------------
# Tweet text generation
# ---------------------------------------------------------------------------


class TextGenerator:
    """Deterministic generator for tweet texts and profile strings."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def benign_text(
        self,
        n_words: int | None = None,
        emoji_prob: float = 0.25,
        digit_prob: float = 0.2,
    ) -> str:
        """A benign tweet body: common words, occasional emoji/digits."""
        rng = self._rng
        if n_words is None:
            n_words = int(rng.integers(4, 15))
        idx = rng.integers(0, len(BENIGN_WORDS), size=n_words)
        words = [BENIGN_WORDS[i] for i in idx.tolist()]
        if rng.random() < digit_prob:
            words.append(str(rng.integers(1, 1000)))
        if rng.random() < emoji_prob:
            words.append(EMOJI[int(rng.integers(0, len(EMOJI)))])
        return " ".join(words)

    def spam_text(self, keyword_class: str, template_id: int) -> str:
        """A spam tweet body from a campaign template.

        Campaign texts are intentionally repetitive: the same
        (keyword_class, template_id) pair always yields the same slogan
        prefix, so near-duplicate clustering has real duplicates to find.
        A random URL and a random digit suffix vary per call.
        """
        rng = self._rng
        keywords = SPAM_KEYWORD_CLASSES[keyword_class]
        # Stable slogan for the template: seed word choice on template_id.
        slot = template_id % len(keywords)
        slogan_words = [
            keywords[slot],
            keywords[(slot + 3) % len(keywords)],
            "now",
            keywords[(slot + 5) % len(keywords)],
            "today",
        ]
        url = make_url(
            MALICIOUS_DOMAINS[int(rng.integers(0, len(MALICIOUS_DOMAINS)))],
            rng,
        )
        emoji = (
            EMOJI[3]
            if keyword_class == "money"
            else EMOJI[int(rng.integers(0, len(EMOJI)))]
        )
        suffix = str(rng.integers(10, 99))
        return " ".join(slogan_words) + f" {emoji} {url} {suffix}"

    def benign_description(self) -> str:
        """A profile bio for a normal user."""
        rng = self._rng
        idx = rng.integers(0, len(BENIGN_WORDS), size=int(rng.integers(3, 9)))
        words = [BENIGN_WORDS[i] for i in idx.tolist()]
        if rng.random() < 0.3:
            words.append(EMOJI[int(rng.integers(0, len(EMOJI)))])
        return " ".join(words)

    def campaign_description(self, base_words: tuple[str, ...]) -> str:
        """A near-duplicate campaign bio: shared base, tiny variation.

        MinHash over tri-gram shingles must collide for campaign members,
        so variation is confined to a trailing token.
        """
        rng = self._rng
        suffix = (
            EMOJI[int(rng.integers(0, len(EMOJI)))]
            if rng.random() < 0.5
            else ""
        )
        return (" ".join(base_words) + " " + suffix).strip()


# ---------------------------------------------------------------------------
# Screen-name generation
# ---------------------------------------------------------------------------

_FIRST_NAMES: tuple[str, ...] = (
    "alex", "sam", "maria", "chen", "nina", "omar", "lena", "ravi", "kate",
    "hugo", "ines", "tariq", "mona", "felix", "aya", "juan", "emma", "noor",
)
_NAME_WORDS: tuple[str, ...] = (
    "sky", "river", "pixel", "nova", "echo", "cedar", "ember", "quill",
    "delta", "orbit", "maple", "frost", "lumen", "drift", "sable", "wren",
)


def normal_screen_name(rng: np.random.Generator) -> str:
    """An organic-looking screen name with high structural variety."""
    style = rng.integers(0, 4)
    first = _FIRST_NAMES[int(rng.integers(0, len(_FIRST_NAMES)))]
    word = _NAME_WORDS[int(rng.integers(0, len(_NAME_WORDS)))]
    if style == 0:
        return f"{first}_{word}"
    if style == 1:
        return f"{first.capitalize()}{word.capitalize()}"
    if style == 2:
        return f"{word}{rng.integers(1, 99)}"
    return f"{first}.{word}.{rng.integers(1900, 2010)}"


def campaign_screen_name(
    prefix: str, digits: int, rng: np.random.Generator
) -> str:
    """An automatically registered campaign name: fixed prefix + digits.

    All members of a campaign share the Σ-sequence pattern
    (e.g. ``Ll+ N+``), which is exactly what the screen-name clustering
    step of Section IV-B detects.
    """
    number = rng.integers(10 ** (digits - 1), 10**digits)
    return f"{prefix}{number}"
