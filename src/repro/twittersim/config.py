"""Simulation configuration.

One dataclass gathers every knob of the synthetic platform so that
experiments, tests, and benchmarks can construct reproducible worlds of
any size.  Defaults give a medium world suitable for benchmark runs;
tests use much smaller ones via :meth:`SimulationConfig.small`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters of the synthetic Twitter world.

    Attributes:
        seed: master RNG seed; every run with the same config is
            bit-for-bit reproducible.
        n_normal_users: number of organic accounts in the population.
        n_campaigns: number of coordinated spam campaigns.
        campaign_size_min / campaign_size_max: members per campaign.
        n_lone_spammers: uncoordinated spammers (no shared artifacts).
        compromised_fraction: fraction of normal accounts that are
            compromised and occasionally relay campaign spam.
        post_rate_min / post_rate_max: bounds of the log-uniform
            per-user posting rate (statuses per day).
        reply_rate: scale of organic replies per post follower-mass.
        spam_suspension_rate: per-hour probability that one live
            spammer is suspended by the platform.
        normal_suspension_rate: per-hour false-positive suspension
            probability for a normal account (suspended != spammer).
        campaign_respawn: whether campaigns replace suspended members.
        no_hashtag_fraction: fraction of users that never use hashtags.
        topic_affinity_mean: mean probability that a post engages a
            platform trending topic.
        min_account_age_days / max_account_age_days: account age range.
    """

    seed: int = 7
    n_normal_users: int = 12_000
    n_campaigns: int = 40
    campaign_size_min: int = 10
    campaign_size_max: int = 30
    n_lone_spammers: int = 200
    compromised_fraction: float = 0.01
    # Per-spammer action rates are deliberately LOW (a spam mention
    # every ~13 hours on average): the spammer population is large and
    # each member acts rarely, matching the paper's regime where ~90%
    # of captured spammers are seen posting only one spam (Fig. 2).
    spam_actions_min: float = 0.08
    spam_actions_max: float = 0.25
    lone_actions_per_hour: float = 0.12
    post_rate_min: float = 0.05
    post_rate_max: float = 50.0
    reply_rate: float = 1.6
    spam_suspension_rate: float = 0.012
    normal_suspension_rate: float = 0.00001
    campaign_respawn: bool = True
    no_hashtag_fraction: float = 0.25
    topic_affinity_mean: float = 0.3
    min_account_age_days: float = 5.0
    max_account_age_days: float = 3_200.0
    # Users post in bursts: "on" sessions (averaging
    # session_mean_hours) alternate with dormant stretches, with a
    # long-run on-fraction of session_on_fraction.  Non-stationary
    # activity is what makes the paper's portability property
    # (Section III-D) worth having: a static honeypot goes stale when
    # its parasitic bodies go dormant.
    session_on_fraction: float = 0.35
    session_mean_hours: float = 6.0
    # Route organic replies along a preferential-attachment follow
    # graph (replies come from followers) instead of uniform sampling.
    use_follow_graph: bool = False
    follow_graph_mean_degree: float = 12.0
    # Store account state as flat numpy columns with thin views
    # (bitwise-identical to object mode; see the columnar parity
    # suite).  Object mode remains only as the parity baseline.
    columnar: bool = True
    # Shard the per-hour emission loop by account range across this
    # many workers (0 = legacy single-stream path).  Sharded streams
    # are bit-identical across worker counts but differ from the
    # unsharded stream (per-shard RNG substreams).
    engine_shards: int = 0

    def __post_init__(self) -> None:
        if self.n_normal_users < 10:
            raise ValueError("n_normal_users must be at least 10")
        if self.campaign_size_min > self.campaign_size_max:
            raise ValueError("campaign_size_min > campaign_size_max")
        if not 0 <= self.compromised_fraction <= 1:
            raise ValueError("compromised_fraction must be in [0, 1]")
        if self.post_rate_min <= 0 or self.post_rate_max < self.post_rate_min:
            raise ValueError("invalid post rate bounds")
        if not 0 < self.session_on_fraction <= 1:
            raise ValueError("session_on_fraction must be in (0, 1]")
        if self.session_mean_hours < 1:
            raise ValueError("session_mean_hours must be >= 1")

    @classmethod
    def small(cls, seed: int = 7, **overrides: object) -> "SimulationConfig":
        """A tiny world for unit tests (hundreds of accounts)."""
        base = cls(
            seed=seed,
            n_normal_users=600,
            n_campaigns=10,
            campaign_size_min=5,
            campaign_size_max=12,
            n_lone_spammers=25,
            spam_actions_min=0.08,
            spam_actions_max=0.3,
            lone_actions_per_hour=0.15,
        )
        return replace(base, **overrides)  # type: ignore[arg-type]

    @classmethod
    def medium(cls, seed: int = 7, **overrides: object) -> "SimulationConfig":
        """The default benchmark world."""
        return replace(cls(seed=seed), **overrides)  # type: ignore[arg-type]
