"""Follow graph of the synthetic platform.

Organic replies flow along social ties: people mostly reply to the
accounts they follow.  The engine can route replies through this graph
(``SimulationConfig.use_follow_graph``) instead of sampling repliers
uniformly, which concentrates conversation — and hence reciprocity
features — along edges, as on the real platform.

The graph is directed (follower -> followee) and built with a
preferential-attachment process whose in-degree targets are the
accounts' ``followers_count`` profile attributes, so graph structure
and profile counters tell one consistent story.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .population import Population


def build_follow_graph(
    population: Population,
    mean_out_degree: float = 12.0,
    seed: int = 0,
) -> nx.DiGraph:
    """A directed follow graph consistent with profile follower counts.

    Each organic account receives ``mean_out_degree`` outgoing follow
    edges in expectation; targets are drawn proportional to profile
    ``followers_count``, yielding an in-degree sequence whose ordering
    matches the profile attribute (exact counts are capped by edge
    budget — the graph is a *sample* of the full platform's edges).

    Args:
        population: the account population.
        mean_out_degree: average follows per account.
        seed: sampling seed.

    Returns:
        A DiGraph whose nodes are user ids; edge u -> v means
        "u follows v".
    """
    rng = np.random.default_rng(seed)
    n_normal = population.config.n_normal_users
    normal_ids = population.order[:n_normal]
    weights = np.array(
        [
            population.accounts[uid].followers_count + 1.0
            for uid in normal_ids
        ]
    )
    probabilities = weights / weights.sum()

    graph = nx.DiGraph()
    graph.add_nodes_from(normal_ids)
    out_degrees = rng.poisson(mean_out_degree, size=n_normal)
    for i, uid in enumerate(normal_ids):
        k = int(out_degrees[i])
        if k == 0:
            continue
        targets = rng.choice(n_normal, size=k, p=probabilities)
        for t in targets:
            target_id = normal_ids[int(t)]
            if target_id != uid:
                graph.add_edge(uid, target_id)
    return graph


class FollowGraphIndex:
    """Fast follower lookups for the engine's reply routing."""

    def __init__(self, graph: nx.DiGraph) -> None:
        self.graph = graph
        self._followers: dict[int, list[int]] = {}

    def followers_of(self, user_id: int) -> list[int]:
        """Accounts following ``user_id`` (cached)."""
        cached = self._followers.get(user_id)
        if cached is None:
            if user_id in self.graph:
                cached = list(self.graph.predecessors(user_id))
            else:
                cached = []
            self._followers[user_id] = cached
        return cached

    def sample_follower(
        self, user_id: int, rng: np.random.Generator
    ) -> int | None:
        """A uniformly random follower of ``user_id``, if any."""
        followers = self.followers_of(user_id)
        if not followers:
            return None
        return followers[int(rng.integers(0, len(followers)))]

    def in_degree_correlation(self, population: Population) -> float:
        """Spearman-style rank agreement of graph in-degree with the
        ``followers_count`` profile attribute (diagnostic)."""
        ids = [uid for uid in self.graph.nodes]
        in_degree = np.array([self.graph.in_degree(uid) for uid in ids])
        profile = np.array(
            [population.accounts[uid].followers_count for uid in ids]
        )
        if in_degree.std() == 0 or profile.std() == 0:
            return 0.0
        ranks_a = np.argsort(np.argsort(in_degree)).astype(float)
        ranks_b = np.argsort(np.argsort(profile)).astype(float)
        return float(np.corrcoef(ranks_a, ranks_b)[0, 1])
