"""Event-driven platform engine.

The engine advances the world one hour at a time.  Per hour it:

1. delivers organic replies scheduled by earlier posts;
2. emits organic posts (Poisson per-account, rate = statuses/day / 24),
   with hashtags drawn from the author's interests and trending topics
   from the platform topic process;
3. schedules organic replies to fresh posts (reply mass grows with the
   author's follower count; delays are log-normal, median ~20 min);
4. emits spam mentions: campaign members, lone spammers, and
   compromised relays pick victims among recently active accounts with
   probability proportional to the :class:`SpammerTasteModel` score —
   the hidden preference the pseudo-honeypot pipeline must rediscover;
5. runs the platform suspension process (spammers are suspended at a
   constant hazard; campaigns may respawn members);
6. feeds every tweet, time-ordered, to registered subscribers (the
   streaming API) and keeps rolling indexes for the REST API.

All randomness flows from the population's single seeded generator, so
whole-world runs are reproducible.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..obs import get_event_stream, get_registry, resources
from . import behavior
from .campaigns import SpammerTasteModel
from .clock import SECONDS_PER_HOUR, SimClock
from .entities import AccountState, Mention, Tweet, TweetKind
from .hashtags import HASHTAG_POOLS, HashtagCategory, category_of
from .ids import SnowflakeGenerator
from .population import AccountKind, Population
from .text import TextGenerator
from .trending import DEFAULT_TOPICS, TopicProcess, TrendingTracker

TweetCallback = Callable[[Tweet], None]

log = logging.getLogger("repro.twittersim.engine")


@dataclass(order=True)
class _PendingReply:
    """A scheduled organic reply, ordered by delivery time."""

    deliver_at: float
    replier_id: int = field(compare=False)
    target: Tweet = field(compare=False)


@dataclass
class HourStats:
    """Aggregate counters for one simulated hour."""

    hour: int
    organic_posts: int = 0
    organic_replies: int = 0
    spam_mentions: int = 0
    suspensions: int = 0

    @property
    def total_tweets(self) -> int:
        return self.organic_posts + self.organic_replies + self.spam_mentions


class TwitterEngine:
    """The synthetic platform: population + activity + moderation."""

    #: How many hours a post stays eligible as a spam-victim anchor.
    RECENT_POST_HOURS = 2

    #: Candidate sample size per spam victim selection.
    VICTIM_CANDIDATES = 48

    #: Rolling recent-tweet index horizon for the REST search endpoint.
    SEARCH_INDEX_HOURS = 24

    #: Hard cap on the recent-tweet index size.
    SEARCH_INDEX_CAP = 120_000

    def __init__(
        self,
        population: Population,
        taste: SpammerTasteModel | None = None,
        topics: tuple[str, ...] = DEFAULT_TOPICS,
    ) -> None:
        self.population = population
        self.clock = SimClock()
        self.taste = taste or SpammerTasteModel()
        self.rng = population.rng
        self.snowflake = SnowflakeGenerator()
        self.text: TextGenerator = population.text
        self.topic_process = TopicProcess(topics, self.rng)
        self.trending = TrendingTracker()
        self._subscribers: list[TweetCallback] = []
        #: Installed chaos-harness hook (see install_fault_injector).
        self.fault_injector = None
        self._pending_replies: list[_PendingReply] = []
        self._recent_posts: deque[Tweet] = deque()
        self._search_index: deque[Tweet] = deque(maxlen=self.SEARCH_INDEX_CAP)
        self._timelines: dict[int, deque[Tweet]] = {}
        self.hour_stats: list[HourStats] = []
        # Trending classification sets, refreshed each hour.
        self._trending_up: set[str] = set()
        self._trending_down: set[str] = set()
        self._popular: set[str] = set()
        # Compromised relays are fixed at build time (no later path
        # flips an account to COMPROMISED), so resolve them once in
        # ground-truth insertion order instead of scanning the whole
        # account_kind dict every hour.
        # repro-lint: disable=RPL501 -- init-time scan, runs once per world
        self._compromised_uids = [
            uid
            for uid, kind in population.truth.account_kind.items()
            if kind is AccountKind.COMPROMISED
        ]
        # Per-hour cache of taste profile scores: profiles drift slowly,
        # so one evaluation per (account, hour) suffices for victim
        # sampling, cutting the hot path by ~50x.
        self._score_cache: dict[int, float] = {}
        self._score_cache_hour = -1
        # Burst-session state: users alternate active sessions and
        # dormancy (Section III-D portability rationale).  Initialized
        # at the stationary on-fraction.
        config = population.config
        self._session_on = (
            self.rng.random(len(population.order))
            < config.session_on_fraction
        )
        # Hot-path instruments, resolved once (registry.reset() keeps
        # instrument identity, so these stay live across test resets).
        registry = get_registry()
        self._m_posts = registry.counter("engine.organic_posts")
        self._m_replies = registry.counter("engine.organic_replies")
        self._m_spam = registry.counter("engine.spam_mentions")
        self._m_suspensions = registry.counter("engine.suspensions")
        self._m_hours = registry.counter("engine.hours")
        self._m_spam_rate = registry.gauge("engine.spam_rate")
        self._m_hour_seconds = registry.histogram("engine.hour_seconds")
        self._m_hour_tweets = registry.histogram("engine.hour_tweets")
        self._events = get_event_stream()
        self._follow_index = None
        if config.use_follow_graph:
            from .graph import FollowGraphIndex, build_follow_graph

            self._follow_index = FollowGraphIndex(
                build_follow_graph(
                    population,
                    mean_out_degree=config.follow_graph_mean_degree,
                    seed=config.seed + 0xF0110,
                )
            )

    # ------------------------------------------------------------------
    # Subscription and read-side indexes
    # ------------------------------------------------------------------

    def subscribe(self, callback: TweetCallback) -> None:
        """Register a firehose subscriber (used by the streaming API)."""
        self._subscribers.append(callback)

    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`repro.faults.FaultInjector` to this world.

        Newly opened filtered streams and the gated REST endpoints
        consult the injector, and :meth:`run_hour` calls its
        ``begin_hour``/``end_hour`` hooks.  The injector draws from its
        own generator, so installing one with an empty plan leaves the
        run byte-identical to an uninstrumented one.
        """
        self.fault_injector = injector

    def unsubscribe(self, callback: TweetCallback) -> None:
        """Remove a firehose subscriber."""
        self._subscribers.remove(callback)

    def recent_tweets(self) -> Iterable[Tweet]:
        """Recent tweets retained for the REST search endpoint."""
        return iter(self._search_index)

    def user_timeline(self, user_id: int) -> list[Tweet]:
        """The last few tweets authored by a user (newest last)."""
        return list(self._timelines.get(user_id, ()))

    def trending_status_of(self, topic: str | None) -> str:
        """Classify a topic as trending_up/trending_down/popular/none."""
        if topic is None:
            return "none"
        if topic in self._trending_up:
            return "trending_up"
        if topic in self._trending_down:
            return "trending_down"
        if topic in self._popular:
            return "popular"
        return "none"

    def trending_sets(self) -> dict[str, set[str]]:
        """Current trending classification (copied)."""
        return {
            "trending_up": set(self._trending_up),
            "trending_down": set(self._trending_down),
            "popular": set(self._popular),
        }

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run_hours(self, hours: int) -> list[HourStats]:
        """Simulate ``hours`` consecutive hours; return their stats."""
        return [self.run_hour() for __ in range(hours)]

    def run_hour(self) -> HourStats:
        """Simulate one hour of platform activity."""
        wall_start = time.perf_counter()
        hour = self.clock.hour
        t0 = self.clock.now
        t_end = t0 + SECONDS_PER_HOUR
        stats = HourStats(hour=hour)
        if self.fault_injector is not None:
            self.fault_injector.begin_hour(self)
        self._refresh_trending(hour)

        emitted: list[Tweet] = []
        emitted.extend(self._deliver_due_replies(t_end, stats))
        posts = self._emit_organic_posts(t0, t_end, hour, stats)
        emitted.extend(posts)
        self._schedule_replies(posts)
        # Replies scheduled for this very hour should still land in it.
        emitted.extend(self._deliver_due_replies(t_end, stats))
        emitted.extend(self._emit_spam(t0, t_end, stats))
        self._grow_profile_counters()
        stats.suspensions = self._run_suspension()

        emitted.sort(key=lambda tw: tw.created_at)
        for tweet in emitted:
            self._index_tweet(tweet)
            for callback in self._subscribers:
                callback(tweet)

        if self.fault_injector is not None:
            self.fault_injector.end_hour(self)
        self._expire_recent_posts(t_end)
        self.clock.advance_to(t_end)
        self.hour_stats.append(stats)
        self._record_hour_metrics(stats, time.perf_counter() - wall_start)
        return stats

    def _record_hour_metrics(self, stats: HourStats, elapsed: float) -> None:
        """Publish one hour's :class:`HourStats` to the registry."""
        self._m_hours.inc()
        self._m_posts.inc(stats.organic_posts)
        self._m_replies.inc(stats.organic_replies)
        self._m_spam.inc(stats.spam_mentions)
        self._m_suspensions.inc(stats.suspensions)
        self._m_spam_rate.set(
            stats.spam_mentions / stats.total_tweets
            if stats.total_tweets
            else 0.0
        )
        self._m_hour_seconds.observe(elapsed)
        self._m_hour_tweets.observe(stats.total_tweets)
        self._events.emit(
            "engine.hour_completed",
            hour=stats.hour,
            tweets=stats.total_tweets,
            organic_posts=stats.organic_posts,
            organic_replies=stats.organic_replies,
            spam_mentions=stats.spam_mentions,
            suspensions=stats.suspensions,
            wall_s=round(elapsed, 6),
            # Events never enter byte-stable report artifacts, so a
            # live RSS reading here is free of determinism concerns.
            rss_kb=resources.sample().max_rss_kb,
        )
        log.debug(
            "hour %d: %d tweets (%d posts, %d replies, %d spam), "
            "%d suspensions, %.3fs",
            stats.hour,
            stats.total_tweets,
            stats.organic_posts,
            stats.organic_replies,
            stats.spam_mentions,
            stats.suspensions,
            elapsed,
        )

    # ------------------------------------------------------------------
    # Hour phases
    # ------------------------------------------------------------------

    def _refresh_trending(self, hour: int) -> None:
        if hour == 0:
            return
        self._trending_up = set(self.trending.top_trending_up(hour - 1))
        self._trending_down = set(self.trending.top_trending_down(hour - 1))
        popular = set(self.trending.top_popular(hour - 1))
        # Popular is the residual class: stable high volume that is not
        # currently surging or collapsing.
        self._popular = popular - self._trending_up - self._trending_down

    def _update_sessions(self) -> np.ndarray:
        """Advance the per-user burst-session Markov chain one hour.

        P(on->off) = 1/session_mean_hours; P(off->on) chosen so the
        stationary on-fraction equals the configured value.  Effective
        posting rate while on is scaled by 1/on_fraction, preserving
        each user's long-run average rate.
        """
        pop = self.population
        config = pop.config
        n = len(pop.order)
        if len(self._session_on) < n:
            grown = np.zeros(n, dtype=bool)
            grown[: len(self._session_on)] = self._session_on
            grown[len(self._session_on):] = (
                self.rng.random(n - len(self._session_on))
                < config.session_on_fraction
            )
            self._session_on = grown
        p_off = 1.0 / config.session_mean_hours
        fraction = config.session_on_fraction
        p_on = p_off * fraction / max(1.0 - fraction, 1e-9)
        draws = self.rng.random(n)
        self._session_on = np.where(
            self._session_on, draws >= p_off, draws < p_on
        )
        always_on = pop.always_on
        if len(always_on) < n:
            padded = np.zeros(n, dtype=bool)
            padded[: len(always_on)] = always_on
            always_on = padded
        return self._session_on | always_on

    def _emit_organic_posts(
        self, t0: float, t_end: float, hour: int, stats: HourStats
    ) -> list[Tweet]:
        pop = self.population
        on = self._update_sessions()
        scale = on.astype(np.float64) / pop.config.session_on_fraction
        # always-on accounts post at their nominal rate, not scaled up.
        if len(pop.always_on) == len(scale):
            scale[pop.always_on] = 1.0
        rates = pop.post_rate_per_day * scale / 24.0
        counts = self.rng.poisson(rates)
        posting = np.nonzero(counts)[0]
        if len(posting):
            # Suspended accounts never post and consume no draws, so
            # filtering them out up front is stream-identical to the
            # per-account check it replaces.
            suspended = np.asarray(pop.suspended_flags())
            posting = posting[~suspended[posting]]
        topic_weights = self.topic_process.weights_at(hour)
        topic_probs = topic_weights / topic_weights.sum()
        # Generator.choice(p=...) rebuilds this normalized cumulative
        # array (and re-validates p) on every call; hoisting it per
        # hour (as plain floats — bisect beats a scalar searchsorted
        # at this size) keeps the per-post draw a single bisection.
        topic_cdf = topic_probs.cumsum()
        topic_cdf /= topic_cdf[-1]
        topic_cdf = topic_cdf.tolist()
        tweets: list[Tweet] = []
        order = pop.order
        accounts = pop.accounts
        for idx in posting.tolist():
            user_id = order[idx]
            account = accounts[user_id]
            for __ in range(int(counts[idx])):
                tweet = self._make_organic_post(
                    account, t0, t_end, topic_cdf, user_id, idx
                )
                tweets.append(tweet)
                self._recent_posts.append(tweet)
                stats.organic_posts += 1
        return tweets

    def _make_organic_post(
        self,
        account: AccountState,
        t0: float,
        t_end: float,
        topic_cdf: list[float],
        user_id: int | None = None,
        idx: int | None = None,
    ) -> Tweet:
        rng = self.rng
        pop = self.population
        if user_id is None:
            user_id = account.user_id
        # low + range * next_double is exactly what Generator.uniform
        # computes; spelling it out skips the broadcast machinery.
        created_at = t0 + (t_end - t0) * rng.random()
        interests = pop.interests.get(user_id, ())
        hashtags: tuple[str, ...] = ()
        if interests and rng.random() < 0.7:
            category = interests[int(rng.integers(0, len(interests)))]
            pool = HASHTAG_POOLS[category]
            if rng.random() < 0.8:
                # choice(n, size=1, replace=False) is one tail-shuffle
                # swap, i.e. exactly one bounded-integers draw — the
                # direct draw is bit-stream identical and ~10x cheaper.
                hashtags = (pool[int(rng.integers(0, len(pool)))],)
            else:
                picks = rng.choice(len(pool), size=2, replace=False)
                hashtags = tuple(pool[int(j)] for j in picks)
        topic: str | None = None
        if idx is None:
            idx = pop.index_of[user_id]
        topic_affinity = pop.topic_affinity
        affinity = (
            topic_affinity.item(idx)
            if idx < len(topic_affinity)
            else 0.0
        )
        if rng.random() < affinity:
            # Identical to choice(len(p), p=p): one uniform draw against
            # the hoisted cumulative distribution.
            topic = self.topic_process.topics[
                bisect_right(topic_cdf, rng.random())
            ]
            self.trending.record(topic, int(created_at // SECONDS_PER_HOUR))
        kind = behavior.draw_kind(rng, spammer=False)
        text = self.text.benign_text()
        if topic is not None:
            text = f"{text} #{topic}"
        if hashtags:
            text = text + " " + " ".join(f"#{h}" for h in hashtags)
        return self._finalize_tweet(
            account,
            created_at,
            text,
            kind=kind,
            spammer=False,
            hashtags=hashtags,
            topic=topic,
        )

    def _schedule_replies(self, posts: list[Tweet]) -> None:
        rng = self.rng
        pop = self.population
        config = pop.config
        normal_pool = pop.order[: config.n_normal_users]
        for post in posts:
            followers = post.user.followers_count
            expected = config.reply_rate * (followers / (followers + 2000.0))
            n_replies = int(rng.poisson(expected))
            for __ in range(n_replies):
                replier_id = None
                if self._follow_index is not None:
                    replier_id = self._follow_index.sample_follower(
                        post.user.user_id, rng
                    )
                if replier_id is None:
                    replier_id = normal_pool[
                        int(rng.integers(0, len(normal_pool)))
                    ]
                if replier_id == post.user.user_id:
                    continue
                delay = behavior.organic_reply_delay(rng)
                heapq.heappush(
                    self._pending_replies,
                    _PendingReply(post.created_at + delay, replier_id, post),
                )

    def _deliver_due_replies(
        self, t_end: float, stats: HourStats
    ) -> list[Tweet]:
        pop = self.population
        tweets: list[Tweet] = []
        while self._pending_replies and (
            self._pending_replies[0].deliver_at < t_end
        ):
            pending = heapq.heappop(self._pending_replies)
            replier = pop.accounts.get(pending.replier_id)
            if replier is None or replier.suspended:
                continue
            target = pending.target
            text = (
                self.text.benign_text(n_words=6)
                + f" @{target.user.screen_name}"
            )
            tweet = self._finalize_tweet(
                replier,
                pending.deliver_at,
                text,
                kind=TweetKind.TWEET,
                spammer=False,
                mentions=(
                    Mention(target.user.user_id, target.user.screen_name),
                ),
                in_reply_to=target,
            )
            tweets.append(tweet)
            stats.organic_replies += 1
        return tweets

    # -- spam --------------------------------------------------------------

    def _emit_spam(
        self, t0: float, t_end: float, stats: HourStats
    ) -> list[Tweet]:
        pop = self.population
        rng = self.rng
        tweets: list[Tweet] = []
        candidates = self._victim_candidates()
        if not candidates:
            return tweets
        # Victim-selection distribution over ALL recent posters, built
        # once per hour: exact taste-proportional sampling (a small
        # random subsample would flatten the concentration the paper's
        # skewed attribute results imply).
        weights = self._victim_weights(candidates)
        total_weight = float(weights.sum())
        if total_weight <= 0:
            return tweets
        cumulative = np.cumsum(weights) / total_weight

        for campaign in pop.campaigns:
            for member_id in campaign.member_ids:
                member = pop.accounts[member_id]
                if member.suspended:
                    continue
                n_actions = int(rng.poisson(campaign.actions_per_hour))
                for __ in range(n_actions):
                    text_body = self.text.spam_text(
                        campaign.keyword_class, campaign.pick_template(rng)
                    )
                    tweet = self._spam_mention(
                        member,
                        text_body,
                        candidates,
                        cumulative,
                        t0,
                        t_end,
                        campaign.reaction_median_s,
                        stealthy=campaign.stealthy,
                    )
                    if tweet is not None:
                        tweets.append(tweet)
                        stats.spam_mentions += 1

        for lone_id, (keyword_class, template_id) in (
            pop.lone_spammer_templates.items()
        ):
            lone = pop.accounts[lone_id]
            if lone.suspended:
                continue
            n_actions = int(rng.poisson(pop.config.lone_actions_per_hour))
            for __ in range(n_actions):
                text_body = self.text.spam_text(keyword_class, template_id)
                tweet = self._spam_mention(
                    lone, text_body, candidates, cumulative, t0, t_end, 60.0
                )
                if tweet is not None:
                    tweets.append(tweet)
                    stats.spam_mentions += 1

        for uid in self._compromised_uids:
            relay = pop.accounts[uid]
            if relay.suspended or rng.random() > 0.02:
                continue
            campaign_id = pop.truth.account_campaign.get(uid)
            if campaign_id is None or campaign_id >= len(pop.campaigns):
                continue
            campaign = pop.campaigns[campaign_id]
            text_body = self.text.spam_text(
                campaign.keyword_class, campaign.pick_template(rng)
            )
            tweet = self._spam_mention(
                relay, text_body, candidates, cumulative, t0, t_end, 300.0
            )
            if tweet is not None:
                tweets.append(tweet)
                stats.spam_mentions += 1

        return tweets

    def _victim_candidates(self) -> list[Tweet]:
        """Latest recent post per distinct author.

        Spammers pick a *victim* and react to their newest post, so an
        account posting 50 times an hour is not 50 times more likely a
        target than one posting once — deduplication keeps victim
        selection driven by the taste model, not by raw post volume.
        """
        latest: dict[int, Tweet] = {}
        for post in self._recent_posts:
            latest[post.user.user_id] = post
        return list(latest.values())

    def _spam_mention(
        self,
        sender: AccountState,
        text_body: str,
        candidates: list[Tweet],
        cumulative: np.ndarray,
        t0: float,
        t_end: float,
        reaction_median_s: float,
        stealthy: bool = False,
    ) -> Tweet | None:
        rng = self.rng
        if not candidates:
            return None
        pick = int(cumulative.searchsorted(rng.random(), side="right"))
        victim_post = candidates[min(pick, len(candidates) - 1)]
        victim = victim_post.user
        if victim.user_id == sender.user_id:
            return None
        delay = behavior.spam_reaction_delay(rng, reaction_median_s)
        created_at = victim_post.created_at + delay
        created_at = min(max(created_at, t0), t_end - 1e-3)
        if created_at <= victim_post.created_at:
            created_at = victim_post.created_at + 1.0
        text = f"@{victim.screen_name} {text_body}"
        return self._finalize_tweet(
            sender,
            created_at,
            text,
            kind=behavior.draw_kind(rng, spammer=True),
            spammer=True,
            stealthy=stealthy,
            mentions=(Mention(victim.user_id, victim.screen_name),),
            in_reply_to=victim_post,
        )

    def _victim_score(self, post: Tweet) -> float:
        account = self.population.accounts.get(post.user.user_id)
        if account is None or account.suspended:
            return 0.0
        if self._score_cache_hour != self.clock.hour:
            self._score_cache.clear()
            self._score_cache_hour = self.clock.hour
        base = self._score_cache.get(account.user_id)
        if base is None:
            base = self.taste.profile_score(account, self.clock.now)
            self._score_cache[account.user_id] = base
        category: HashtagCategory | None = None
        if post.hashtags:
            category = category_of(post.hashtags[0])
        trending_status = self.trending_status_of(post.topic)
        # Profile taste concentrates (** concentration); posting context
        # scales linearly.  Cubing the context too would let a mediocre
        # account with one trending hashtag out-attract the accounts
        # whose *profiles* match spammer tastes, inverting Table V.
        return (
            base ** self.taste.weights.concentration
        ) * self.taste.context_multiplier(category, trending_status)

    def _victim_weights(self, candidates: list[Tweet]) -> np.ndarray:
        """Taste weights for all victim candidates, column-wise.

        In columnar mode the uncached profile base scores are computed
        in one :meth:`SpammerTasteModel.profile_score_batch` call over
        the candidate rows; the per-post context multipliers stay
        scalar.  Object mode falls back to per-post scoring.
        """
        pop = self.population
        cols = pop.cols
        if cols is None:
            return np.array([self._victim_score(p) for p in candidates])
        if self._score_cache_hour != self.clock.hour:
            self._score_cache.clear()
            self._score_cache_hour = self.clock.hour
        cache = self._score_cache
        index_of = pop.index_of
        arrays = cols._arrays
        suspended = arrays["suspended"]
        rows = [index_of.get(p.user.user_id, -1) for p in candidates]
        need: list[tuple[int, int]] = []
        for post, row in zip(candidates, rows):
            uid = post.user.user_id
            if row >= 0 and not suspended[row] and uid not in cache:
                need.append((uid, row))
        if need:
            picked = np.array([row for __, row in need], dtype=np.intp)
            bases = self.taste.profile_score_batch(
                self.clock.now,
                arrays["created_at"][picked],
                arrays["friends_count"][picked],
                arrays["followers_count"][picked],
                arrays["listed_count"][picked],
                arrays["favourites_count"][picked],
                arrays["statuses_count"][picked],
            )
            for (uid, __), base in zip(need, bases.tolist()):
                cache[uid] = base
        concentration = self.taste.weights.concentration
        weights = np.empty(len(candidates), dtype=np.float64)
        for i, post in enumerate(candidates):
            row = rows[i]
            if row < 0 or suspended[row]:
                weights[i] = 0.0
                continue
            category: HashtagCategory | None = None
            if post.hashtags:
                category = category_of(post.hashtags[0])
            weights[i] = (
                cache[post.user.user_id] ** concentration
            ) * self.taste.context_multiplier(
                category, self.trending_status_of(post.topic)
            )
        return weights

    # -- shared tweet assembly ----------------------------------------------

    def _finalize_tweet(
        self,
        sender: AccountState,
        created_at: float,
        text: str,
        kind: TweetKind,
        spammer: bool,
        stealthy: bool = False,
        hashtags: tuple[str, ...] = (),
        mentions: tuple[Mention, ...] = (),
        topic: str | None = None,
        in_reply_to: Tweet | None = None,
    ) -> Tweet:
        urls = (
            tuple(token for token in text.split() if token.startswith("http"))
            if "http" in text
            else ()
        )
        sender.statuses_count += 1
        sender.last_post_at = created_at
        tweet = Tweet(
            tweet_id=self.snowflake.next_id(created_at),
            created_at=created_at,
            user=sender.snapshot(),
            text=text,
            kind=kind,
            source=behavior.draw_source(self.rng, spammer and not stealthy),
            hashtags=hashtags,
            mentions=mentions,
            urls=urls,
            topic=topic,
            in_reply_to_tweet_id=(
                in_reply_to.tweet_id if in_reply_to else None
            ),
            in_reply_to_created_at=(
                in_reply_to.created_at if in_reply_to else None
            ),
        )
        if spammer:
            self.population.truth.spam_tweet_ids.add(tweet.tweet_id)
        for mention in mentions:
            mentioned = self.population.accounts.get(mention.user_id)
            if mentioned is not None:
                mentioned.last_mentioned_at = created_at
        return tweet

    # -- maintenance ---------------------------------------------------------

    def _grow_profile_counters(self) -> None:
        """Organic accounts slowly gain favourites (Poisson per hour)."""
        pop = self.population
        counts = self.rng.poisson(pop.fav_rate_per_day / 24.0)
        grew = np.nonzero(counts)[0]
        if pop.cols is not None:
            favourites = pop.cols.favourites_count
            favourites[grew] += counts[grew]
            return
        for idx in grew:
            account = pop.accounts[pop.order[idx]]
            account.favourites_count += int(counts[idx])

    def _run_suspension(self) -> int:
        """Per-account suspension hazard, vectorized by segments.

        The scalar loop drew one uniform per live account in ``order``
        sequence; a respawn hit inserts extra draws mid-stream (the new
        member's profile).  Batching the whole population would
        therefore diverge the RNG stream the moment a respawn fires, so
        draws are *segmented*: maximal runs of positions that cannot
        trigger extra draws (everything except campaign members when
        respawn is on) get one vector draw over their live accounts,
        while respawn-capable positions draw scalar in place.  The
        result is bit-identical to the scalar loop at any world size.
        """
        pop = self.population
        config = pop.config
        rng = self.rng
        n0 = len(pop.order)
        # Snapshot is safe for positions < n0: processing a position
        # never changes another position's flags, and respawns only
        # append past n0.
        live = ~np.asarray(pop.suspended_flags()[:n0])
        rates = np.where(
            pop.spam_hazard[:n0],
            config.spam_suspension_rate,
            config.normal_suspension_rate,
        )
        suspended = 0

        def run_segment(start: int, end: int) -> int:
            hits = 0
            positions = np.nonzero(live[start:end])[0]
            if not len(positions):
                return 0
            positions += start
            draws = rng.random(len(positions))
            for pos in positions[draws < rates[positions]]:
                pop.accounts[pop.order[int(pos)]].suspended = True
                hits += 1
            return hits

        def check_scalar(pos: int) -> int:
            uid = pop.order[pos]
            account = pop.accounts[uid]
            if account.suspended:
                return 0
            kind = pop.truth.account_kind[uid]
            rate = (
                config.spam_suspension_rate
                if kind.is_spammer and kind is not AccountKind.COMPROMISED
                else config.normal_suspension_rate
            )
            if rng.random() >= rate:
                return 0
            account.suspended = True
            campaign_id = pop.truth.account_campaign.get(uid)
            if (
                config.campaign_respawn
                and kind is AccountKind.CAMPAIGN_SPAMMER
                and campaign_id is not None
            ):
                campaign = pop.campaigns[campaign_id]
                campaign.member_ids.remove(uid)
                pop.spawn_campaign_member(campaign, self.clock.now)
            return 1

        if config.campaign_respawn:
            respawn_capable = np.nonzero(pop.campaign_member_flags[:n0])[0]
        else:
            respawn_capable = np.zeros(0, dtype=np.int64)
        start = 0
        for sp in respawn_capable:
            sp = int(sp)
            if sp > start:
                suspended += run_segment(start, sp)
            suspended += check_scalar(sp)
            start = sp + 1
        if start < n0:
            suspended += run_segment(start, n0)
        # Members respawned above appended themselves to ``order`` and
        # face the hazard within the same hour, exactly as the scalar
        # loop visited them while iterating the growing list.
        pos = n0
        while pos < len(pop.order):
            suspended += check_scalar(pos)
            pos += 1
        return suspended

    def _index_tweet(self, tweet: Tweet) -> None:
        self._search_index.append(tweet)
        timeline = self._timelines.get(tweet.user.user_id)
        if timeline is None:
            timeline = self._timelines[tweet.user.user_id] = deque(maxlen=5)
        timeline.append(tweet)

    def _expire_recent_posts(self, now: float) -> None:
        horizon = now - self.RECENT_POST_HOURS * SECONDS_PER_HOUR
        while self._recent_posts and (
            self._recent_posts[0].created_at < horizon
        ):
            self._recent_posts.popleft()
        search_horizon = now - self.SEARCH_INDEX_HOURS * SECONDS_PER_HOUR
        while self._search_index and (
            self._search_index[0].created_at < search_horizon
        ):
            self._search_index.popleft()
