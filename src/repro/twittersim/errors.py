"""Exception hierarchy for the synthetic Twitter platform.

The real system interacts with Twitter through tweepy, whose errors are
surfaced as :class:`tweepy.TweepError` subclasses.  The simulator mirrors
that structure so client code (the pseudo-honeypot monitor) exercises the
same error-handling paths it would against the live API.
"""

from __future__ import annotations


class TwitterSimError(Exception):
    """Base class for all synthetic-platform errors."""


class RateLimitError(TwitterSimError):
    """Raised when a REST endpoint's rate-limit window is exhausted.

    Attributes:
        reset_at: simulation time (seconds) at which the window resets.
    """

    def __init__(self, message: str, reset_at: float) -> None:
        super().__init__(message)
        self.reset_at = reset_at


class UserNotFoundError(TwitterSimError):
    """Raised when a REST lookup references an unknown user id or name."""


class UserSuspendedError(TwitterSimError):
    """Raised when a REST lookup references a suspended account."""


class NetworkTimeoutError(TwitterSimError):
    """Raised when a REST request times out at the transport layer.

    Transient by definition: the same request retried a moment later
    may succeed, which is exactly what :class:`repro.faults.retry.
    RetryPolicy` models.
    """


class StreamDisconnectedError(TwitterSimError):
    """Raised when reading from a stream whose connection was closed."""


class FilterLimitError(TwitterSimError):
    """Raised when a streaming filter exceeds the platform's track limit."""


class InvalidFilterError(TwitterSimError):
    """Raised when a streaming filter expression cannot be parsed."""
