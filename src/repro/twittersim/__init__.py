"""Synthetic Twitter platform substrate.

Everything the pseudo-honeypot pipeline consumes from the real Twitter
platform — account profiles, the public tweet firehose, streaming
filters, REST lookups, trending analytics, the suspension process — is
reproduced here as a deterministic, seedable simulation.  See DESIGN.md
for the substitution rationale.
"""

from .campaigns import Campaign, SpammerTasteModel, TasteWeights
from .clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimClock, days, hours
from .config import SimulationConfig
from .drift import apply_spammer_drift, drifted_taste_weights
from .engine import HourStats, TwitterEngine
from .graph import FollowGraphIndex, build_follow_graph
from .entities import (
    AccountState,
    Mention,
    Tweet,
    TweetKind,
    TweetSource,
    UserProfile,
)
from .hashtags import HASHTAG_POOLS, NO_HASHTAG, HashtagCategory, category_of
from .images import ImageStore
from .population import AccountKind, GroundTruth, Population, build_population
from .trending import DEFAULT_TOPICS, TopicProcess, TrendingTracker

__all__ = [
    "AccountKind",
    "AccountState",
    "Campaign",
    "DEFAULT_TOPICS",
    "GroundTruth",
    "HASHTAG_POOLS",
    "HashtagCategory",
    "HourStats",
    "ImageStore",
    "Mention",
    "NO_HASHTAG",
    "Population",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SimClock",
    "SimulationConfig",
    "SpammerTasteModel",
    "TasteWeights",
    "TopicProcess",
    "TrendingTracker",
    "Tweet",
    "TweetKind",
    "TweetSource",
    "TwitterEngine",
    "UserProfile",
    "apply_spammer_drift",
    "build_follow_graph",
    "build_population",
    "category_of",
    "days",
    "drifted_taste_weights",
    "FollowGraphIndex",
    "hours",
]
