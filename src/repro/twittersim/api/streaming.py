"""Streaming API: real-time filtered tweet delivery.

Mirrors the tweepy Streaming API surface the paper's implementation
uses (Section V-A): a filter is a list of track terms of the form
``@screen_name``; the stream delivers every public tweet *crossing*
those accounts — tweets the account posts, and tweets that @-mention
it — in real time, without any visible interaction with the account.
That invisibility is what makes the pseudo-honeypot transparent to its
parasitic bodies.
"""

from __future__ import annotations

from typing import Protocol

from ...faults.injector import DeliveryAction
from ..engine import TwitterEngine
from ..entities import Tweet
from ..errors import (
    FilterLimitError,
    InvalidFilterError,
    StreamDisconnectedError,
)

#: Twitter's filter endpoint caps tracked entities; we mirror that.
MAX_TRACK_TERMS = 5000


def _check_track_limit(track: list[str]) -> None:
    if len(track) > MAX_TRACK_TERMS:
        raise FilterLimitError(
            f"{len(track)} track terms exceed the limit of "
            f"{MAX_TRACK_TERMS}"
        )


class StreamListener(Protocol):
    """Receiver of matched tweets (tweepy ``StreamListener`` analogue)."""

    def on_tweet(self, tweet: Tweet) -> None:
        """Called once per matched tweet, in timestamp order."""


class _BufferListener:
    """Default listener that simply buffers matched tweets."""

    def __init__(self) -> None:
        self.tweets: list[Tweet] = []

    def on_tweet(self, tweet: Tweet) -> None:
        self.tweets.append(tweet)


def parse_track_term(term: str) -> str:
    """Validate an ``@screen_name`` track term, returning the name.

    Raises:
        InvalidFilterError: if the term is not of the ``@name`` form.
    """
    if not term.startswith("@") or len(term) < 2:
        raise InvalidFilterError(
            f"track term {term!r} must be of the form '@screen_name'"
        )
    name = term[1:]
    if any(ch.isspace() for ch in name):
        raise InvalidFilterError(f"track term {term!r} contains whitespace")
    return name


class FilteredStream:
    """A live filtered stream over the platform firehose.

    Three connection states mirror a real streaming client:

    * **open** — matches are delivered to the listener;
    * **broken** — the transport dropped (fault injection) but the
      server keeps matching: like Twitter's limit notices, the stream
      counts what the client missed (``undelivered_matches``) so the
      client can reconcile a reconnect backfill exactly;
    * **closed** — :meth:`disconnect` was called; the subscription is
      gone for good.
    """

    def __init__(
        self,
        engine: TwitterEngine,
        tracked_names: set[str],
        listener: StreamListener,
    ) -> None:
        self._engine = engine
        self._tracked = tracked_names
        self.listener = listener
        self._closed = False
        self._broken = False
        self.matched_count = 0
        #: Matches the broken transport never delivered.
        self.undelivered_matches = 0
        #: Simulation time the transport dropped (gap-window start).
        self.disconnected_at: float | None = None
        self._held: Tweet | None = None
        self._injector = engine.fault_injector
        engine.subscribe(self._on_firehose_tweet)
        if self._injector is not None:
            self._injector.attach_stream(self)

    @property
    def connected(self) -> bool:
        """Whether matches currently reach the listener."""
        return not self._closed and not self._broken

    @property
    def broken(self) -> bool:
        """Whether the transport dropped (recoverable by reconnect)."""
        return self._broken

    @property
    def closed(self) -> bool:
        """Whether the stream was deliberately disconnected."""
        return self._closed

    @property
    def tracked_names(self) -> frozenset[str]:
        """Screen names currently tracked by this stream."""
        return frozenset(self._tracked)

    def update_filter(self, track: list[str]) -> None:
        """Replace the track list (hourly pseudo-honeypot switching).

        Raises:
            StreamDisconnectedError: if the stream is closed or its
                transport is down (reconnect first).
            FilterLimitError: if the new track list exceeds the
                platform limit, or the call is rejected by an
                injected fault.
            InvalidFilterError: if a term is malformed; the previous
                filter stays in place.
        """
        if self._closed:
            raise StreamDisconnectedError("cannot update a closed stream")
        if self._broken:
            raise StreamDisconnectedError(
                "cannot update a broken stream; reconnect first"
            )
        _check_track_limit(track)
        if self._injector is not None:
            self._injector.check_stream_call(
                "update_filter", self._engine.clock.now
            )
        self._tracked = {parse_track_term(term) for term in track}

    def disconnect(self) -> None:
        """Detach from the firehose; further matches stop immediately."""
        if not self._closed:
            self._engine.unsubscribe(self._on_firehose_tweet)
            self._closed = True
            self._broken = False
            self._held = None
            if self._injector is not None:
                self._injector.detach_stream(self)

    def mark_broken(self, at: float) -> None:
        """Simulate a transport drop at simulation time ``at``.

        The stream stays subscribed in counting mode: every further
        match increments ``undelivered_matches``.  A held (delayed)
        tweet dies with the connection and widens the gap window so a
        backfill over ``[disconnected_at, reconnect)`` still covers it.
        """
        if self._broken or self._closed:
            return
        self._broken = True
        self.disconnected_at = at
        if self._held is not None:
            self.undelivered_matches += 1
            self.disconnected_at = min(at, self._held.created_at)
            self._held = None

    def flush_held(self) -> None:
        """Deliver a held (out-of-order) tweet at the hour boundary."""
        if self._held is not None and self.connected:
            held, self._held = self._held, None
            self._deliver(held)

    def _on_firehose_tweet(self, tweet: Tweet) -> None:
        if not self._matches(tweet):
            return
        if self._broken:
            self.undelivered_matches += 1
            return
        action = DeliveryAction.DELIVER
        if self._injector is not None:
            action = self._injector.on_match(self, tweet)
            if action is DeliveryAction.BREAK:
                # The drop happened at/before this tweet: it is the
                # first match the dead transport failed to carry.
                self.undelivered_matches += 1
                return
            if action is DeliveryAction.HOLD and self._held is None:
                self._held = tweet
                return
        self._deliver(tweet)
        if action is DeliveryAction.DUPLICATE:
            self.listener.on_tweet(tweet)
        if self._held is not None:
            held, self._held = self._held, None
            self._deliver(held)

    def _deliver(self, tweet: Tweet) -> None:
        self.matched_count += 1
        self.listener.on_tweet(tweet)

    def _matches(self, tweet: Tweet) -> bool:
        if tweet.user.screen_name in self._tracked:
            return True
        return any(m.screen_name in self._tracked for m in tweet.mentions)


class StreamingClient:
    """Factory for filtered streams (tweepy ``Stream`` analogue)."""

    MAX_TRACK_TERMS = MAX_TRACK_TERMS

    def __init__(self, engine: TwitterEngine) -> None:
        self._engine = engine

    def filter(
        self,
        track: list[str],
        listener: StreamListener | None = None,
    ) -> FilteredStream:
        """Open a filtered stream on ``@screen_name`` track terms.

        Args:
            track: track terms, each ``@screen_name``.
            listener: receiver of matched tweets; a buffering listener
                is created when omitted (read it via
                ``stream.listener.tweets``).

        Raises:
            FilterLimitError: if more than ``MAX_TRACK_TERMS`` terms,
                or the call is rejected by an injected fault.
            InvalidFilterError: if a term is malformed.
        """
        _check_track_limit(track)
        injector = self._engine.fault_injector
        if injector is not None:
            injector.check_stream_call("filter", self._engine.clock.now)
        names = {parse_track_term(term) for term in track}
        return FilteredStream(
            self._engine, names, listener or _BufferListener()
        )
