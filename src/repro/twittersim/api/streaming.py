"""Streaming API: real-time filtered tweet delivery.

Mirrors the tweepy Streaming API surface the paper's implementation
uses (Section V-A): a filter is a list of track terms of the form
``@screen_name``; the stream delivers every public tweet *crossing*
those accounts — tweets the account posts, and tweets that @-mention
it — in real time, without any visible interaction with the account.
That invisibility is what makes the pseudo-honeypot transparent to its
parasitic bodies.
"""

from __future__ import annotations

from typing import Protocol

from ..engine import TwitterEngine
from ..entities import Tweet
from ..errors import (
    FilterLimitError,
    InvalidFilterError,
    StreamDisconnectedError,
)


class StreamListener(Protocol):
    """Receiver of matched tweets (tweepy ``StreamListener`` analogue)."""

    def on_tweet(self, tweet: Tweet) -> None:
        """Called once per matched tweet, in timestamp order."""


class _BufferListener:
    """Default listener that simply buffers matched tweets."""

    def __init__(self) -> None:
        self.tweets: list[Tweet] = []

    def on_tweet(self, tweet: Tweet) -> None:
        self.tweets.append(tweet)


def parse_track_term(term: str) -> str:
    """Validate an ``@screen_name`` track term, returning the name.

    Raises:
        InvalidFilterError: if the term is not of the ``@name`` form.
    """
    if not term.startswith("@") or len(term) < 2:
        raise InvalidFilterError(
            f"track term {term!r} must be of the form '@screen_name'"
        )
    name = term[1:]
    if any(ch.isspace() for ch in name):
        raise InvalidFilterError(f"track term {term!r} contains whitespace")
    return name


class FilteredStream:
    """A live filtered stream over the platform firehose."""

    def __init__(
        self,
        engine: TwitterEngine,
        tracked_names: set[str],
        listener: StreamListener,
    ) -> None:
        self._engine = engine
        self._tracked = tracked_names
        self.listener = listener
        self._connected = True
        self.matched_count = 0
        engine.subscribe(self._on_firehose_tweet)

    @property
    def connected(self) -> bool:
        """Whether the stream is still attached to the firehose."""
        return self._connected

    @property
    def tracked_names(self) -> frozenset[str]:
        """Screen names currently tracked by this stream."""
        return frozenset(self._tracked)

    def update_filter(self, track: list[str]) -> None:
        """Replace the track list (hourly pseudo-honeypot switching).

        Raises:
            StreamDisconnectedError: if the stream was disconnected.
        """
        if not self._connected:
            raise StreamDisconnectedError("cannot update a closed stream")
        self._tracked = {parse_track_term(term) for term in track}

    def disconnect(self) -> None:
        """Detach from the firehose; further matches stop immediately."""
        if self._connected:
            self._engine.unsubscribe(self._on_firehose_tweet)
            self._connected = False

    def _on_firehose_tweet(self, tweet: Tweet) -> None:
        if self._matches(tweet):
            self.matched_count += 1
            self.listener.on_tweet(tweet)

    def _matches(self, tweet: Tweet) -> bool:
        if tweet.user.screen_name in self._tracked:
            return True
        return any(m.screen_name in self._tracked for m in tweet.mentions)


class StreamingClient:
    """Factory for filtered streams (tweepy ``Stream`` analogue)."""

    #: Twitter's filter endpoint caps tracked entities; we mirror that.
    MAX_TRACK_TERMS = 5000

    def __init__(self, engine: TwitterEngine) -> None:
        self._engine = engine

    def filter(
        self,
        track: list[str],
        listener: StreamListener | None = None,
    ) -> FilteredStream:
        """Open a filtered stream on ``@screen_name`` track terms.

        Args:
            track: track terms, each ``@screen_name``.
            listener: receiver of matched tweets; a buffering listener
                is created when omitted (read it via
                ``stream.listener.tweets``).

        Raises:
            FilterLimitError: if more than ``MAX_TRACK_TERMS`` terms.
            InvalidFilterError: if a term is malformed.
        """
        if len(track) > self.MAX_TRACK_TERMS:
            raise FilterLimitError(
                f"{len(track)} track terms exceed the limit of "
                f"{self.MAX_TRACK_TERMS}"
            )
        names = {parse_track_term(term) for term in track}
        return FilteredStream(
            self._engine, names, listener or _BufferListener()
        )
