"""RESTful API: user lookup, timelines, search, profile images.

Mirrors the read-only REST endpoints the paper's pipeline needs, with
Twitter-style per-endpoint rate limits (requests per 15-minute window,
measured in *simulation* time).  Every read returns public data only;
suspension status surfaces exactly as on the real platform — a lookup
of a suspended account fails with :class:`UserSuspendedError`, which is
the signal the ground-truth labeler's "suspended account" method uses.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..engine import TwitterEngine
from ..entities import Tweet, UserProfile
from ..errors import RateLimitError, UserNotFoundError, UserSuspendedError

#: Length of a rate-limit window, in simulation seconds.
WINDOW_SECONDS = 15 * 60


@dataclass(frozen=True)
class EndpointLimit:
    """Rate limit of one endpoint: max requests per 15-minute window."""

    name: str
    max_requests: int


class _RateLimiter:
    """Tracks per-endpoint request budgets over sliding windows."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._window_start: dict[str, float] = {}
        self._used: dict[str, int] = defaultdict(int)

    def check(self, limit: EndpointLimit, now: float) -> None:
        if not self._enabled:
            return
        start = self._window_start.get(limit.name)
        if start is None or now - start >= WINDOW_SECONDS:
            self._window_start[limit.name] = now
            self._used[limit.name] = 0
            start = now
        if self._used[limit.name] >= limit.max_requests:
            raise RateLimitError(
                f"rate limit exceeded on {limit.name}",
                reset_at=start + WINDOW_SECONDS,
            )
        self._used[limit.name] += 1


class RestClient:
    """Read-only REST client over the synthetic platform.

    Args:
        engine: the platform engine to read from.
        enforce_rate_limits: disable in bulk experiments where the
            caller batches reads far beyond what a 15-minute window
            models meaningfully (the paper ran multiple API keys).
    """

    USERS_LOOKUP = EndpointLimit("users/lookup", 900)
    USERS_SHOW = EndpointLimit("users/show", 900)
    SEARCH_TWEETS = EndpointLimit("search/tweets", 450)
    USER_TIMELINE = EndpointLimit("statuses/user_timeline", 1500)
    USERS_SAMPLE = EndpointLimit("users/sample", 900)

    #: Max ids per ``lookup_users`` call (Twitter allows 100).
    LOOKUP_BATCH = 100

    def __init__(
        self, engine: TwitterEngine, enforce_rate_limits: bool = False
    ) -> None:
        self._engine = engine
        self._limiter = _RateLimiter(enabled=enforce_rate_limits)
        self._rng = np.random.default_rng(
            engine.population.config.seed + 0x5EED
        )

    def _gate(self, limit: EndpointLimit) -> None:
        """Per-call gate: the rate limiter, then any injected fault."""
        now = self._engine.clock.now
        self._limiter.check(limit, now)
        injector = self._engine.fault_injector
        if injector is not None:
            injector.check_rest_call(limit.name, now)

    # ------------------------------------------------------------------

    def get_user(self, user_id: int) -> UserProfile:
        """Fetch one user's public profile.

        Raises:
            UserNotFoundError: unknown id.
            UserSuspendedError: the account is suspended.
            RateLimitError: the users/show window is exhausted.
        """
        self._gate(self.USERS_SHOW)
        account = self._engine.population.accounts.get(user_id)
        if account is None:
            raise UserNotFoundError(f"no user with id {user_id}")
        if account.suspended:
            raise UserSuspendedError(f"user {user_id} is suspended")
        return account.snapshot()

    def lookup_users(self, user_ids: list[int]) -> list[UserProfile]:
        """Batch profile lookup; suspended/unknown ids are dropped.

        Mirrors Twitter's ``users/lookup``: the response simply omits
        accounts that no longer resolve, which is how bulk suspension
        checks are implemented in practice.

        Raises:
            ValueError: if more than ``LOOKUP_BATCH`` ids are passed.
        """
        if len(user_ids) > self.LOOKUP_BATCH:
            raise ValueError(
                f"lookup_users accepts at most {self.LOOKUP_BATCH} ids"
            )
        rows = self.lookup_user_rows(user_ids)
        if rows is not None:
            return self._engine.population.cols.snapshot_rows(rows)
        self._gate(self.USERS_LOOKUP)
        population = self._engine.population
        profiles = []
        for user_id in user_ids:
            account = population.accounts.get(user_id)
            if account is not None and not account.suspended:
                profiles.append(account.snapshot())
        return profiles

    def lookup_user_rows(self, user_ids: list[int]) -> list[int] | None:
        """Columnar ``lookup_users``: surviving row indices, not objects.

        Resolves ids against the account store's columnar arrays and
        screens suspension without materializing profile snapshots —
        callers that only need column reads (e.g. the selection layer's
        attribute screening) skip object construction entirely.  Gates
        and filters exactly like :meth:`lookup_users`.

        Returns ``None`` (without consuming a rate-limit slot) when the
        population has no columnar store; callers fall back to
        :meth:`lookup_users`.

        Raises:
            ValueError: if more than ``LOOKUP_BATCH`` ids are passed.
        """
        if len(user_ids) > self.LOOKUP_BATCH:
            raise ValueError(
                f"lookup_users accepts at most {self.LOOKUP_BATCH} ids"
            )
        population = self._engine.population
        cols = population.cols
        if cols is None:
            return None
        self._gate(self.USERS_LOOKUP)
        index_of = population.index_of
        suspended = cols._arrays["suspended"]
        return [
            row
            for row in (index_of.get(uid) for uid in user_ids)
            if row is not None and not suspended.item(row)
        ]

    @property
    def account_columns(self):
        """The population's columnar account store (None in object mode)."""
        return self._engine.population.cols

    def is_suspended(self, user_id: int) -> bool:
        """True if a known account is currently suspended.

        Raises:
            UserNotFoundError: unknown id.
        """
        account = self._engine.population.accounts.get(user_id)
        if account is None:
            raise UserNotFoundError(f"no user with id {user_id}")
        return account.suspended

    def sample_user_ids(self, n: int) -> list[int]:
        """A uniform random sample of live account ids.

        This models candidate discovery from the public sample stream:
        the pseudo-honeypot selection layer screens these candidates
        against its attribute criteria.
        """
        self._gate(self.USERS_SAMPLE)
        live = self._engine.population.live_ids()
        if n >= len(live):
            return list(live)
        picks = self._rng.choice(len(live), size=n, replace=False)
        return [live[int(i)] for i in picks]

    def user_timeline(self, user_id: int) -> list[Tweet]:
        """The account's most recent tweets (newest last).

        Raises:
            UserNotFoundError: unknown id.
            UserSuspendedError: the account is suspended.
        """
        self._gate(self.USER_TIMELINE)
        account = self._engine.population.accounts.get(user_id)
        if account is None:
            raise UserNotFoundError(f"no user with id {user_id}")
        if account.suspended:
            raise UserSuspendedError(f"user {user_id} is suspended")
        return self._engine.user_timeline(user_id)

    def search_recent(
        self,
        hashtag: str | None = None,
        topic: str | None = None,
        limit: int = 500,
    ) -> list[Tweet]:
        """Search the recent-tweet index by hashtag or topic.

        Returns the newest matching tweets first, up to ``limit``.
        """
        self._gate(self.SEARCH_TWEETS)
        matches: list[Tweet] = []
        for tweet in reversed(list(self._engine.recent_tweets())):
            if hashtag is not None and hashtag not in tweet.hashtags:
                continue
            if topic is not None and tweet.topic != topic:
                continue
            matches.append(tweet)
            if len(matches) >= limit:
                break
        return matches

    def recent_sample(self, limit: int = 20_000) -> list[Tweet]:
        """The newest ``limit`` tweets from the public sample stream.

        One bulk read the selection layer indexes locally (hashtag ->
        authors, topic -> authors), instead of issuing one search per
        hashtag — the same pattern a real deployment uses to stay
        inside search rate limits.
        """
        self._gate(self.SEARCH_TWEETS)
        index = list(self._engine.recent_tweets())
        return index[-limit:]

    def search_crossing(
        self,
        screen_names: list[str],
        since: float | None = None,
        until: float | None = None,
        limit: int = 10_000,
    ) -> list[Tweet]:
        """Recent tweets crossing any of the given accounts.

        A *crossing* tweet is authored by one of the accounts or
        @-mentions one — exactly the filtered stream's match predicate
        — so a monitoring client can backfill a stream gap with one
        ``search/tweets`` sweep over ``[since, until)``.  Bounded by
        the platform's recent-tweet retention; results are oldest
        first, capped at ``limit``.
        """
        self._gate(self.SEARCH_TWEETS)
        names = set(screen_names)
        matches: list[Tweet] = []
        for tweet in self._engine.recent_tweets():
            if since is not None and tweet.created_at < since:
                continue
            if until is not None and tweet.created_at >= until:
                continue
            if tweet.user.screen_name in names or any(
                mention.screen_name in names
                for mention in tweet.mentions
            ):
                matches.append(tweet)
                if len(matches) >= limit:
                    break
        return matches

    def get_profile_image(self, image_id: int) -> np.ndarray:
        """Fetch profile-image pixels (public avatar download).

        Raises:
            KeyError: unknown image id.
        """
        return self._engine.population.images.get(image_id)

    def trending_sets(self) -> dict[str, set[str]]:
        """Current trending-up / trending-down / popular topic sets.

        Substitutes the hashtag-analytics service [9] the paper reads
        trend labels from.
        """
        return self._engine.trending_sets()
