"""Developer-facing APIs of the synthetic platform (tweepy analogues)."""

from .rest import RestClient
from .streaming import FilteredStream, StreamListener, StreamingClient

__all__ = [
    "FilteredStream",
    "RestClient",
    "StreamListener",
    "StreamingClient",
]
