"""Ablation — contribution of the four feature groups (Section IV-A).

Train the same classifier on column subsets of the 58-feature matrix:
content-only, profile-only, behavior-only, and the full vector.
Expected shape: each group alone carries signal, and the full vector
is at least as accurate as any single group.
"""

import numpy as np
from conftest import save_result

from repro.analysis.tables import render_table
from repro.features.schema import FEATURE_GROUPS
from repro.ml import RandomForestClassifier, cross_validate


def test_ablation_feature_groups(benchmark, session, results_dir):
    X, y = session.training_matrix
    n_splits = 5

    subsets = {
        "sender profile only": [FEATURE_GROUPS["sender_profile"]],
        "content only": [FEATURE_GROUPS["content"]],
        "behavior only": [FEATURE_GROUPS["behavior"]],
        "all 58 features": [
            (0, 58),
        ],
    }

    def run_all():
        results = {}
        for name, spans in subsets.items():
            columns = np.concatenate(
                [np.arange(start, end) for start, end in spans]
            )
            result = cross_validate(
                lambda: RandomForestClassifier(
                    n_estimators=25, max_depth=40, seed=0
                ),
                X[:, columns],
                y,
                n_splits=n_splits,
                seed=0,
            )
            results[name] = result.mean
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (name, report.accuracy, report.precision, report.recall)
        for name, report in results.items()
    ]
    table = render_table(
        ["Feature set", "Accuracy", "Precision", "Recall"],
        rows,
        title="Ablation — feature-group contribution (RF, 5-fold CV)",
    )
    save_result(results_dir, "ablation_features.txt", table)

    full = results["all 58 features"]
    assert full.accuracy >= 0.85
    for name, report in results.items():
        assert full.accuracy >= report.accuracy - 0.03, name
