"""Table VI — top-10 sampling attributes by PGE.

Paper's ranking: joining 1 list/day (2.69), 30k friends+followers,
10k followers, 500 lists, 10k friends, 200k favourites, 0.5 lists/day,
200k statuses, 0.25 lists/day, 1:10 friend:follower ratio.  Shape to
reproduce: list-activity bins and large-audience bins dominate the
top of the PGE ranking.
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.core.pge import pge_by_sample


def test_table6_pge_ranking(benchmark, session, results_dir):
    outcome = session.main_outcome
    exposure = session.main_run.exposure

    ranking = benchmark.pedantic(
        lambda: pge_by_sample(outcome, exposure), rounds=1, iterations=1
    )

    rows = [
        (i + 1, entry.label, entry.spammers, entry.node_hours, entry.pge)
        for i, entry in enumerate(ranking[:10])
    ]
    table = render_table(
        ["Rank", "Sampling attribute", "Spammers", "Node-hours", "PGE"],
        rows,
        title="Table VI (reproduction) — top 10 sampling attributes by PGE",
    )
    save_result(results_dir, "table6_pge.txt", table)

    assert len(ranking) >= 10
    pges = [e.pge for e in ranking]
    assert pges == sorted(pges, reverse=True)
    assert ranking[0].pge > 0

    # Shape: bins tied to list activity / audience size / favourites /
    # statuses (the paper's top-10 families) dominate the head of the
    # ranking over hashtag/trending categories.
    preferred_families = (
        "avg_lists_per_day",
        "lists_count",
        "followers_count",
        "friends_count",
        "total_friends_followers",
        "favorites_count",
        "avg_favorites_per_day",
        "status_count",
        "avg_statuses_per_day",
        "account_age_days",
        "friend_follower_ratio",
    )
    top5_profile = sum(
        any(e.label.startswith(f + "=") for f in preferred_families)
        for e in ranking[:5]
    )
    assert top5_profile >= 3, [e.label for e in ranking[:5]]
