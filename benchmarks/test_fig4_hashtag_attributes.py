"""Figure 4 — captures and spammer ratios per hashtag category.

Paper: social, general, technology and business capture the most
spammers (10,444 / 9,400 / 9,251 / 7,133); the spammer *ratios* put
technology, entertainment, business and general on top.  Shape to
reproduce: the taste-preferred categories (social/general/tech/
business) collectively out-capture the long tail
(education/environment/astrology).
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.core.attributes import HASHTAG_ATTRIBUTE_KEYS
from repro.core.pge import aggregate


def test_fig4_hashtag_categories(benchmark, session, results_dir):
    outcome = session.main_outcome

    stats = benchmark.pedantic(
        lambda: aggregate(outcome, by_sample=False), rounds=1, iterations=1
    )

    rows = []
    for key in HASHTAG_ATTRIBUTE_KEYS:
        entry = stats.get(key)
        rows.append(
            (
                key,
                entry.tweets if entry else 0,
                entry.spams if entry else 0,
                entry.spammers if entry else 0,
                entry.spammer_ratio() if entry else 0.0,
            )
        )
    rows.sort(key=lambda r: -r[3])
    table = render_table(
        ["Attribute", "Tweets", "Spams", "Spammers", "Spammer ratio"],
        rows,
        title="Figure 4 (reproduction) — hashtag-based attributes",
    )
    save_result(results_dir, "fig4_hashtag_attributes.txt", table)

    spammers = {key: (stats[key].spammers if key in stats else 0)
                for key in HASHTAG_ATTRIBUTE_KEYS}
    preferred = (
        spammers["hashtag_social"]
        + spammers["hashtag_general"]
        + spammers["hashtag_tech"]
        + spammers["hashtag_business"]
    )
    tail = (
        spammers["hashtag_education"]
        + spammers["hashtag_environment"]
        + spammers["hashtag_astrology"]
    )
    assert preferred > 0
    assert preferred >= tail * 0.9, (preferred, tail)
