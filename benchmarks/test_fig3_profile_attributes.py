"""Figure 3(a-k) — tweets/spams/spammers per profile-attribute sample value.

Paper: capture counts grow with friends, followers, total audience,
list counts, favorites and statuses; account age peaks near 1,000
days; low friend:follower ratios attract more spammers than high
ones.  Shape to reproduce: for the monotone attributes, the top half
of the sample values captures more spammers than the bottom half.
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.core.attributes import PROFILE_ATTRIBUTES
from repro.core.pge import aggregate


def _series(stats, spec):
    rows = []
    for value in spec.sample_values:
        label = spec.sample_label(value)
        entry = stats.get(label)
        rows.append(
            (
                f"{value:g}",
                entry.tweets if entry else 0,
                entry.spams if entry else 0,
                entry.spammers if entry else 0,
            )
        )
    return rows


def test_fig3_profile_attribute_series(benchmark, session, results_dir):
    outcome = session.main_outcome

    stats = benchmark.pedantic(
        lambda: aggregate(outcome, by_sample=True), rounds=1, iterations=1
    )

    blocks = []
    for spec in PROFILE_ATTRIBUTES:
        rows = _series(stats, spec)
        blocks.append(
            render_table(
                ["Sample value", "Tweets", "Spams", "Spammers"],
                rows,
                title=f"Figure 3 — {spec.description} ({spec.key})",
            )
        )
    text = "\n\n".join(blocks)
    save_result(results_dir, "fig3_profile_attributes.txt", text)

    # Shape assertions on the monotone attributes: upper half of the
    # sampling range captures at least as many spammers as the lower.
    monotone = (
        "followers_count",
        "total_friends_followers",
        "lists_count",
        "avg_lists_per_day",
    )
    votes = 0
    for spec in PROFILE_ATTRIBUTES:
        if spec.key not in monotone:
            continue
        spammers = [
            stats[spec.sample_label(v)].spammers
            if spec.sample_label(v) in stats
            else 0
            for v in spec.sample_values
        ]
        low, high = sum(spammers[:5]), sum(spammers[5:])
        if high >= low:
            votes += 1
    assert votes >= len(monotone) - 1, "monotone trend violated broadly"
