"""The perf harness end-to-end: BENCH artifacts and both gates.

These run the real ``scripts/bench.py`` CLI (micro workload, seconds)
in a scratch directory, so they live under ``benchmarks/`` rather than
the tier-1 ``tests/`` tree.  They prove the acceptance loop twice
over: the legacy single-baseline flow (first run writes
``BENCH_<runid>.json``, a second diffs against it, a doctored slow
baseline trips the non-zero exit) and the ledger trajectory flow (runs
accumulate in a scratch ledger and gate against the median).  Every
invocation points the ledger at the scratch directory — the repo's
committed ``results/ledger/bench.jsonl`` must never absorb test runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_CLI = REPO_ROOT / "scripts" / "bench.py"


def run_bench(tmp_path: Path, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_PROFILE", None)
    args = [
        sys.executable,
        str(BENCH_CLI),
        "--scale",
        "micro",
        "--out-dir",
        str(tmp_path),
        *extra,
    ]
    if "--ledger" not in extra and "--no-ledger" not in extra:
        args += ["--no-ledger"]
    return subprocess.run(
        args, capture_output=True, text=True, env=env, check=False
    )


def test_first_run_writes_artifact_and_skips_gate(tmp_path):
    result = run_bench(tmp_path, "--runid", "run_a")
    assert result.returncode == 0, result.stderr
    payload = json.loads((tmp_path / "BENCH_run_a.json").read_text())
    assert payload["schema"] == "repro-bench/1"
    assert any(
        name.startswith("experiment.") for name in payload["phases"]
    )
    assert payload["totals"]["wall_s"] > 0
    assert "gate skipped" in result.stdout


def test_second_run_diffs_against_previous(tmp_path):
    first = run_bench(tmp_path, "--runid", "run_a")
    assert first.returncode == 0, first.stderr
    second = run_bench(tmp_path, "--runid", "run_b")
    assert second.returncode == 0, second.stderr
    assert "run_a" in second.stdout
    assert "experiment.collect_ground_truth" in second.stdout
    assert "<total>" in second.stdout


def test_doctored_slow_baseline_trips_the_gate(tmp_path):
    first = run_bench(tmp_path, "--runid", "run_a")
    assert first.returncode == 0, first.stderr
    # Rewrite the baseline claiming every phase used to be ~instant,
    # so the real second run reads as a massive regression.
    baseline = tmp_path / "BENCH_run_a.json"
    payload = json.loads(baseline.read_text())
    for entry in payload["phases"].values():
        entry["wall_s"] = 0.05
    payload["totals"]["wall_s"] = 0.05 * len(payload["phases"])
    baseline.write_text(json.dumps(payload))  # repro-lint: disable=RPL205 -- doctors a scratch tmp_path baseline to look slow; test scaffolding, not an artifact
    gated = run_bench(tmp_path, "--runid", "run_b")
    assert gated.returncode == 1
    assert "PERF REGRESSION" in gated.stderr
    assert "<< REGRESSION" in gated.stdout
    ungated = run_bench(tmp_path, "--runid", "run_c", "--no-gate")
    assert ungated.returncode == 0, ungated.stderr


def test_ledger_trajectory_accumulates_and_gates(tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    first = run_bench(
        tmp_path, "--runid", "run_a", "--ledger", str(ledger)
    )
    assert first.returncode == 0, first.stderr
    assert "gate skipped" in first.stdout
    second = run_bench(
        tmp_path,
        "--runid",
        "run_b",
        "--ledger",
        str(ledger),
        "--threshold",
        "5.0",
    )
    assert second.returncode == 0, second.stderr
    assert "median[1]" in second.stdout
    lines = [
        json.loads(line)
        for line in ledger.read_text().splitlines()
        if line.strip()
    ]
    assert [entry["runid"] for entry in lines] == ["run_a", "run_b"]
    # The ledger reader accepts v1 records; the writer stamps the
    # current schema (bumped to /2 when incident payloads landed).
    assert all(
        entry["schema"] == "repro-ledger/2" for entry in lines
    )


def test_doctored_slow_trajectory_trips_the_gate(tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    first = run_bench(
        tmp_path, "--runid", "run_a", "--ledger", str(ledger)
    )
    assert first.returncode == 0, first.stderr
    # Rewrite the run's ledger line to claim every phase was ~instant.
    entry = json.loads(ledger.read_text())
    for phase in entry["phases"].values():
        phase["wall_s"] = 0.005
    entry["totals"]["wall_s"] = 0.005 * len(entry["phases"])
    # Medians only trust phases that took >= the comparability floor;
    # keep one phase just above it so the gate has a real baseline.
    entry["phases"]["experiment.run_plan"]["wall_s"] = 0.06
    ledger.write_text(json.dumps(entry) + "\n")  # repro-lint: disable=RPL205 -- doctors a scratch tmp_path ledger line to look fast; never touches results/ledger/
    gated = run_bench(
        tmp_path, "--runid", "run_b", "--ledger", str(ledger)
    )
    assert gated.returncode == 1
    assert "PERF REGRESSION" in gated.stderr
    assert "median[1]" in gated.stdout
