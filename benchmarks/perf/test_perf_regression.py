"""The perf harness end-to-end: BENCH artifacts and the gate.

These run the real ``scripts/bench.py`` CLI (micro workload, seconds)
in a scratch directory, so they live under ``benchmarks/`` rather than
the tier-1 ``tests/`` tree.  They prove the acceptance loop: a first
run writes ``BENCH_<runid>.json``, a second run diffs against it, and
a doctored slow baseline trips the non-zero exit.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_CLI = REPO_ROOT / "scripts" / "bench.py"


def run_bench(tmp_path: Path, *extra: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_PROFILE", None)
    return subprocess.run(
        [
            sys.executable,
            str(BENCH_CLI),
            "--scale",
            "micro",
            "--out-dir",
            str(tmp_path),
            *extra,
        ],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )


def test_first_run_writes_artifact_and_skips_gate(tmp_path):
    result = run_bench(tmp_path, "--runid", "run_a")
    assert result.returncode == 0, result.stderr
    payload = json.loads((tmp_path / "BENCH_run_a.json").read_text())
    assert payload["schema"] == "repro-bench/1"
    assert any(
        name.startswith("experiment.") for name in payload["phases"]
    )
    assert payload["totals"]["wall_s"] > 0
    assert "gate skipped" in result.stdout


def test_second_run_diffs_against_previous(tmp_path):
    first = run_bench(tmp_path, "--runid", "run_a")
    assert first.returncode == 0, first.stderr
    second = run_bench(tmp_path, "--runid", "run_b")
    assert second.returncode == 0, second.stderr
    assert "run_a" in second.stdout
    assert "experiment.collect_ground_truth" in second.stdout
    assert "<total>" in second.stdout


def test_doctored_slow_baseline_trips_the_gate(tmp_path):
    first = run_bench(tmp_path, "--runid", "run_a")
    assert first.returncode == 0, first.stderr
    # Rewrite the baseline claiming every phase used to be ~instant,
    # so the real second run reads as a massive regression.
    baseline = tmp_path / "BENCH_run_a.json"
    payload = json.loads(baseline.read_text())
    for entry in payload["phases"].values():
        entry["wall_s"] = 0.05
    payload["totals"]["wall_s"] = 0.05 * len(payload["phases"])
    baseline.write_text(json.dumps(payload))
    gated = run_bench(tmp_path, "--runid", "run_b")
    assert gated.returncode == 1
    assert "PERF REGRESSION" in gated.stderr
    assert "<< REGRESSION" in gated.stdout
    ungated = run_bench(tmp_path, "--runid", "run_c", "--no-gate")
    assert ungated.returncode == 0, ungated.stderr
