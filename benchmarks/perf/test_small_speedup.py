"""The columnar-refactor speedup gate: small workload, >= 2x.

The committed run ledger carries two ``small`` records captured on
this hardware immediately *before* the columnar data plane and the
vectorized hour loop landed (runids ``pre-refactor-a``/``-b``, ~9.6 s
median).  This gate replays the same workload through the same CLI
today and fails if end-to-end wall time has regressed to worse than
half the pre-refactor median — i.e. the refactor's headline 2x must
hold on every future commit.

Lives under ``benchmarks/`` (minutes-scale, timing-sensitive) rather
than the tier-1 ``tests/`` tree.  The run is measured exactly the way
the baselines were: ``scripts/bench.py`` in a subprocess, wall taken
from the BENCH artifact's ``totals.wall_s`` (summed root
``experiment.*`` spans), pointed at a scratch directory so the
committed ledger never absorbs test runs.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_CLI = REPO_ROOT / "scripts" / "bench.py"
LEDGER = REPO_ROOT / "results" / "ledger" / "bench.jsonl"

#: The refactor's acceptance bar: current wall <= baseline / SPEEDUP.
SPEEDUP = 2.0


def pre_refactor_median() -> float:
    """Median small-workload wall of the pre-refactor ledger records."""
    walls = []
    for line in LEDGER.read_text().splitlines():
        record = json.loads(line)
        if record.get("runid", "").startswith("pre-refactor") and (
            record.get("meta", {}).get("scale") == "small"
        ):
            walls.append(float(record["totals"]["wall_s"]))
    if not walls:
        pytest.skip("ledger has no pre-refactor small baseline records")
    return statistics.median(walls)


def run_small(tmp_path: Path) -> float:
    """One CLI small run; returns the artifact's totals.wall_s."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_PROFILE", None)
    proc = subprocess.run(
        [
            sys.executable,
            str(BENCH_CLI),
            "--scale",
            "small",
            "--runid",
            "speedup-gate",
            "--out-dir",
            str(tmp_path),
            "--no-ledger",
            "--no-gate",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    artifact = json.loads(
        (tmp_path / "BENCH_speedup-gate.json").read_text()
    )
    return float(artifact["totals"]["wall_s"])


class TestSmallWorkloadSpeedup:
    def test_two_x_vs_pre_refactor_baseline(self, tmp_path):
        baseline = pre_refactor_median()
        wall = run_small(tmp_path)
        bar = baseline / SPEEDUP
        assert wall <= bar, (
            f"small workload took {wall:.2f}s; the {SPEEDUP:g}x gate "
            f"requires <= {bar:.2f}s (pre-refactor median "
            f"{baseline:.2f}s)"
        )
