"""Disabled observability stays within the documented <2% envelope.

The hot paths (per-capture emits, per-hour metrics) are instrumented
unconditionally; the contract (README/DESIGN §6/§8) is that with
``set_enabled(False)`` every write degenerates to a flag check cheap
enough to ignore.  Measured share on a micro workload is ~0.03%, so
the 2% assertion has a wide noise margin.
"""

from __future__ import annotations

import time

from repro import obs
from repro.analysis.bench import run_bench_workload


def test_disabled_emit_share_of_a_real_run_is_under_two_percent():
    obs.reset()
    obs.set_enabled(False)
    stream = obs.get_event_stream()
    n = 200_000
    start = time.perf_counter()
    for i in range(n):
        stream.emit("network.capture", hour=i, category="spam")
    per_call = (time.perf_counter() - start) / n
    assert per_call < 5e-6, f"disabled emit {per_call * 1e9:.0f}ns"

    # Scale the per-call cost by the event volume of a real workload:
    # even if every one of its emits hit the disabled fast path, the
    # total would be far below 2% of the run's wall-clock.
    obs.set_enabled(True)
    try:
        report = run_bench_workload("micro")
        wall = sum(span.duration_s for span in report.spans)
        emits = obs.get_event_stream().total_emitted
        assert emits > 0 and wall > 0
        share = emits * per_call / wall
        assert share < 0.02, f"disabled-emit share {share:.2%}"
    finally:
        obs.reset()
