"""Perf gate: 4 pool workers beat sequential by >=1.3x on the hot paths.

The parallel layer's acceptance bar (ROADMAP "fast as the hardware
allows") is a real wall-clock win on the CPU-bound stages — forest
fitting and cross-validation — with *identical* outputs.  The 1.3x
floor leaves headroom below the ~1.5x typically measured at 4 workers
on a quiet 4-core machine (pool startup and chunk pickling eat the
rest; trees are coarse enough that IPC is a small fraction).

Skipped below 4 CPUs: pools on an oversubscribed core measure
scheduler contention, not the layer.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import cross_validate
from repro.obs import reset, set_enabled

WORKERS = 4
MIN_SPEEDUP = 1.3

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"needs >= {WORKERS} CPUs for a meaningful speedup",
)


@pytest.fixture(autouse=True)
def quiet_obs():
    # Timing runs: keep span/event bookkeeping out of the comparison.
    reset()
    set_enabled(False)
    yield
    reset()
    set_enabled(True)


def _workload():
    rng = np.random.default_rng(17)
    X = rng.normal(size=(2_000, 12))
    y = (X[:, 0] + 0.4 * X[:, 3] - 0.2 * X[:, 7] > 0).astype(np.int64)
    return X, y


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def make_forest() -> RandomForestClassifier:
    return RandomForestClassifier(n_estimators=40, max_depth=10, seed=5)


def test_forest_fit_speedup_with_identical_predictions():
    X, y = _workload()
    sequential, t_seq = _timed(
        lambda: RandomForestClassifier(
            n_estimators=40, max_depth=10, seed=5, workers=0
        ).fit(X, y)
    )
    parallel, t_par = _timed(
        lambda: RandomForestClassifier(
            n_estimators=40, max_depth=10, seed=5, workers=WORKERS
        ).fit(X, y)
    )
    assert np.array_equal(
        sequential.predict_proba(X), parallel.predict_proba(X)
    )
    speedup = t_seq / t_par
    assert speedup >= MIN_SPEEDUP, (
        f"forest fit speedup {speedup:.2f}x at {WORKERS} workers "
        f"(sequential {t_seq:.2f}s, parallel {t_par:.2f}s)"
    )


def test_cross_validation_speedup_with_identical_metrics():
    X, y = _workload()
    sequential, t_seq = _timed(
        lambda: cross_validate(
            make_forest, X, y, n_splits=8, seed=5, workers=0
        )
    )
    parallel, t_par = _timed(
        lambda: cross_validate(
            make_forest, X, y, n_splits=8, seed=5, workers=WORKERS
        )
    )
    assert sequential.mean == parallel.mean
    assert sequential.folds == parallel.folds
    speedup = t_seq / t_par
    assert speedup >= MIN_SPEEDUP, (
        f"cross-validation speedup {speedup:.2f}x at {WORKERS} workers "
        f"(sequential {t_seq:.2f}s, parallel {t_par:.2f}s)"
    )
