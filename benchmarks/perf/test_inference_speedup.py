"""Perf gate: compiled-forest inference beats the object-tree walk 2x.

ROADMAP 5b's acceptance bar, measured on the workload the service
actually runs: many small batches (the service scores
``DEFAULT_BATCH_SIZE``-row batches as they flush, where per-tree
dispatch overhead dominates the object path).  The compiled arena's
advantage shrinks as batches grow — at tens of thousands of rows both
paths are element-work bound — so the gate pins the deployment shape,
not a synthetic giant matrix.  Parity is asserted in the same breath:
a fast wrong answer must fail here, not in production.

Skipped below 4 CPUs: a loaded single core measures scheduler noise.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.obs import reset, set_enabled

MIN_CPUS = 4
MIN_SPEEDUP = 2.0
#: The service's scoring shape: a stream of small flush batches.
BATCH_ROWS = 256
N_BATCHES = 60

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < MIN_CPUS,
    reason=f"needs >= {MIN_CPUS} CPUs for a meaningful speedup",
)


@pytest.fixture(autouse=True)
def quiet_obs():
    # Timing runs: keep span/event bookkeeping out of the comparison.
    reset()
    set_enabled(False)
    yield
    reset()
    set_enabled(True)


def _fitted_forest() -> RandomForestClassifier:
    rng = np.random.default_rng(19)
    X = rng.normal(size=(1_500, 12))
    y = (X[:, 0] + 0.4 * X[:, 3] - 0.2 * X[:, 7] > 0).astype(np.int64)
    forest = RandomForestClassifier(
        n_estimators=70, max_depth=12, seed=5, workers=0
    )
    forest.fit(X, y)
    return forest


def _batches() -> list[np.ndarray]:
    rng = np.random.default_rng(23)
    return [
        rng.normal(size=(BATCH_ROWS, 12)) for __ in range(N_BATCHES)
    ]


def test_compiled_inference_speedup_with_identical_probabilities():
    forest = _fitted_forest()
    compiled = forest.compiled()
    batches = _batches()

    # Warm both paths (first-touch allocations out of the timing).
    forest.predict_proba_trees(batches[0])
    compiled.predict_proba(batches[0])

    start = time.perf_counter()
    reference = [forest.predict_proba_trees(X) for X in batches]
    t_trees = time.perf_counter() - start

    start = time.perf_counter()
    fast = [compiled.predict_proba(X) for X in batches]
    t_compiled = time.perf_counter() - start

    for ref, got in zip(reference, fast):
        assert np.array_equal(ref, got)

    speedup = t_trees / t_compiled
    assert speedup >= MIN_SPEEDUP, (
        f"compiled inference speedup {speedup:.2f}x on "
        f"{N_BATCHES}x{BATCH_ROWS}-row batches "
        f"(trees {t_trees:.3f}s, compiled {t_compiled:.3f}s)"
    )
