"""Ablation — portability (hourly node switching, Section III-D).

The paper argues the pseudo-honeypot must migrate hourly to stay on
Active, spammer-attractive accounts.  Compare the advanced plan
deployed with hourly switching against a static deployment over the
same platform hours.  Expected shape: the switching network captures
at least as many unique spammers (fresh nodes keep sampling the
attractive population; static nodes go stale as accounts drift in and
out of activity).
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.core.network import PseudoHoneypotNetwork


def test_ablation_portability(benchmark, session, results_dir):
    experiment = session.experiment
    plan = session.advanced_plan
    hours = max(session.scale.comparison_hours // 2, 6)

    def run_pair():
        switching = PseudoHoneypotNetwork(
            experiment.engine,
            experiment.make_selector(seed_offset=301),
            plan,
            switch_every_hours=1,
        )
        switching.deploy()
        static = PseudoHoneypotNetwork(
            experiment.engine,
            experiment.make_selector(seed_offset=302),
            plan,
            switch_every_hours=10_000,  # never re-select
        )
        static.deploy()
        runs = experiment.run_networks(
            {"switching": switching, "static": static}, hours
        )
        return runs

    runs = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    outcomes = {
        name: session.detector.classify(run.captures)
        for name, run in runs.items()
    }

    rows = [
        (
            name,
            outcomes[name].n_tweets,
            outcomes[name].n_spams,
            outcomes[name].n_spammers,
        )
        for name in ("switching", "static")
    ]
    table = render_table(
        ["Deployment", "Captures", "Spams", "Spammers"],
        rows,
        title=(
            f"Ablation — hourly switching vs static nodes ({hours} h, "
            "same platform hours)"
        ),
    )
    save_result(results_dir, "ablation_portability.txt", table)

    switching = outcomes["switching"].n_spammers
    static = outcomes["static"].n_spammers
    # Portability should not hurt, and usually helps.
    assert switching >= static * 0.8
