"""Figure 6 — advanced pseudo-honeypot vs non pseudo-honeypot.

Paper: over 100 hours, 100 advanced pseudo-honeypot nodes garner
17,336 spammers vs 1,850 for 100 random accounts — 9.37x.  Both
systems here observe the *same* simulated hours.  Shape to
reproduce: the advanced system's cumulative spammer curve dominates
the random system's at every hour, with a final multiple well above 1.
"""

from collections import defaultdict

from conftest import save_result

from repro.analysis.tables import render_table


def _cumulative_spammers(outcome):
    by_hour: dict[int, set] = defaultdict(set)
    for capture, spam in zip(outcome.captures, outcome.is_spam):
        if spam:
            by_hour[capture.hour].add(capture.sender_id)
    hours = sorted(by_hour)
    seen: set = set()
    series = []
    for hour in hours:
        seen |= by_hour[hour]
        series.append((hour, len(seen)))
    return series


def test_fig6_advanced_vs_random(benchmark, session, results_dir):
    outcomes = session.comparison_outcomes

    series = benchmark.pedantic(
        lambda: {
            name: _cumulative_spammers(outcome)
            for name, outcome in outcomes.items()
        },
        rounds=1,
        iterations=1,
    )

    advanced = dict(series["advanced"])
    random_series = dict(series["random"])
    hours = sorted(set(advanced) | set(random_series))

    def value_at(mapping, hour):
        best = 0
        for h in sorted(mapping):
            if h <= hour:
                best = mapping[h]
        return best

    rows = [
        (hour, value_at(advanced, hour), value_at(random_series, hour))
        for hour in hours
    ]
    final_advanced = rows[-1][1] if rows else 0
    final_random = rows[-1][2] if rows else 0
    ratio = final_advanced / max(final_random, 1)
    table = render_table(
        ["Hour", "Advanced pseudo-honeypot", "Non pseudo-honeypot"],
        rows,
        title=(
            "Figure 6 (reproduction) — cumulative spammers captured; "
            f"final ratio = {ratio:.2f}x"
        ),
    )
    save_result(results_dir, "fig6_advanced_vs_random.txt", table)

    assert final_advanced > final_random, "advanced must win"
    assert ratio > 1.5
    # Dominance through (most of) the run, not just at the end.
    dominated = sum(
        1 for __, adv, rnd in rows if adv >= rnd
    )
    assert dominated >= 0.8 * len(rows)
