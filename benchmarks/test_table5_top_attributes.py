"""Table V — top-10 attributes by captured spammers.

Paper: avg-of-lists leads (40,662 spammers), then lists count,
friends&followers, followers, favorites, trending-up, friends,
hashtag-social, hashtag-general, popular tweets.  Shape to reproduce:
profile attributes tied to list activity and audience size rank at the
top, with trending/hashtag attributes present but not sweeping the
table.
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.core.attributes import PROFILE_ATTRIBUTE_BY_KEY
from repro.core.pge import aggregate


def test_table5_top_attributes(benchmark, session, results_dir):
    outcome = session.main_outcome

    def build():
        stats = aggregate(outcome, by_sample=False)
        return sorted(stats.values(), key=lambda s: -s.spammers)

    ranked = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        (i + 1, s.label, s.tweets, s.spams, s.spammers)
        for i, s in enumerate(ranked[:10])
    ]
    table = render_table(
        ["Rank", "Attribute", "Tweets", "Spams", "Spammers"],
        rows,
        title="Table V (reproduction) — top 10 attributes by spammers",
    )
    save_result(results_dir, "table5_top_attributes.txt", table)

    assert len(ranked) >= 10
    top10_labels = [s.label for s in ranked[:10]]
    profile_in_top10 = [
        label for label in top10_labels if label in PROFILE_ATTRIBUTE_BY_KEY
    ]
    # Profile-based attributes must reach the top of the table
    # (the paper's top-5 are all profile attributes).
    assert profile_in_top10, f"no profile attribute in top 10: {top10_labels}"
    assert ranked[0].spammers > 0
    # Spammer counts are ranked (sanity of the sort itself).
    spammers = [s.spammers for s in ranked[:10]]
    assert spammers == sorted(spammers, reverse=True)
