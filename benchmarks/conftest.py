"""Shared fixtures for the benchmark harness.

Every table/figure benchmark reads from one lazily-built
:class:`repro.analysis.session.ReproSession`; heavy artifacts (world,
ground truth, detector, the 2,400-node sweep) are built once per pytest
run, outside the benchmark timers.  Each benchmark times its own
analysis/regeneration step and writes the rendered table to
``results/``.

Scale defaults to ``small`` (tens of seconds end-to-end); set
``REPRO_SCALE=medium`` for the paper-shaped run (a few minutes) or
``REPRO_SCALE=tiny`` for a smoke pass.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.session import get_session


def bench_scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def session():
    """The shared reproduction session at the configured scale."""
    return get_session(bench_scale())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the rendered tables/figures are written to."""
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


def save_result(results_dir: Path, name: str, text: str) -> None:
    """Write one rendered artifact and echo it to stdout."""
    (results_dir / name).write_text(text + "\n")  # repro-lint: disable=RPL205 -- human-readable table render; the diffable JSON still goes through RunReport.save
    print(f"\n{text}\n[saved to results/{name}]")
