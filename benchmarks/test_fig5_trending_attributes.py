"""Figure 5 — captures and spam ratios per trending-based attribute.

Paper: trending-up, popular, trending-down, no-trending capture
13,314 / 9,336 / 8,292 / 4,043 spammers with spam ratios
36.5% / 40.2% / 35.9% / 20.6%.  Shape to reproduce: the three
trending classes beat no-trending in both spammer count and spam
ratio.
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.core.attributes import TRENDING_ATTRIBUTE_KEYS
from repro.core.pge import aggregate


def test_fig5_trending_categories(benchmark, session, results_dir):
    outcome = session.main_outcome

    stats = benchmark.pedantic(
        lambda: aggregate(outcome, by_sample=False), rounds=1, iterations=1
    )

    rows = []
    for key in TRENDING_ATTRIBUTE_KEYS:
        entry = stats.get(key)
        rows.append(
            (
                key,
                entry.tweets if entry else 0,
                entry.spams if entry else 0,
                entry.spammers if entry else 0,
                entry.spam_ratio() if entry else 0.0,
            )
        )
    table = render_table(
        ["Attribute", "Tweets", "Spams", "Spammers", "Spam ratio"],
        rows,
        title="Figure 5 (reproduction) — trending-based attributes",
    )
    save_result(results_dir, "fig5_trending_attributes.txt", table)

    by_key = {
        key: (stats[key] if key in stats else None)
        for key in TRENDING_ATTRIBUTE_KEYS
    }
    trending_spammers = sum(
        by_key[k].spammers
        for k in ("trending_up", "trending_down", "popular_tweets")
        if by_key[k]
    )
    assert trending_spammers > 0
    # The mean trending class is competitive with / above the
    # no-trending control (exact margins are noisy at small scale;
    # the medium run shows the full separation — EXPERIMENTS.md).
    no_trending = by_key["no_trending"].spammers if by_key["no_trending"] else 0
    assert trending_spammers / 3 >= no_trending * 0.5
