"""Figure 2 — fraction of spammers vs number of spam messages.

Paper: ~90% of captured spammers post only one spam message; fewer
than 0.03% post more than ten.  Shape to reproduce: a monotone-ish
heavy-tailed decay with the bulk of spammers at the smallest counts
(the exact 90% depends on the platform/monitor size ratio, which a
laptop-scale world compresses — see EXPERIMENTS.md).
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.core.pge import spam_count_distribution


def test_fig2_spam_count_distribution(benchmark, session, results_dir):
    outcome = session.main_outcome

    distribution = benchmark.pedantic(
        lambda: spam_count_distribution(outcome), rounds=1, iterations=1
    )
    assert distribution, "detector found no spam"

    rows = [
        (count, fraction)
        for count, fraction in sorted(distribution.items())[:15]
    ]
    table = render_table(
        ["# spam messages", "Fraction of spammers"],
        rows,
        title="Figure 2 (reproduction) — spam-count distribution",
    )
    save_result(results_dir, "fig2_spam_distribution.txt", table)

    fractions = dict(distribution)
    low_mass = sum(f for c, f in fractions.items() if c <= 2)
    high_mass = sum(f for c, f in fractions.items() if c > 10)
    # Bulk of spammers at 1-2 spams; tail above 10 spams is small.
    assert low_mass > 0.5
    assert high_mass < 0.2
    # The single-spam bin is the mode.
    assert fractions.get(1, 0) == max(fractions.values())
