"""Table IV — classifier comparison by 10-fold cross-validation.

Paper (precision / FPR): DT 0.801/0.249, kNN 0.813/0.193,
SVM 0.877/0.026, EGB 0.952/0.033, RF 0.974/0.002; RF wins and becomes
the deployed detector.  Shape to reproduce: the ensemble tree methods
(RF, EGB) lead, RF's false-positive rate is the (near-)lowest, and DT
and kNN trail.
"""

import numpy as np
import pytest
from conftest import save_result

from repro.analysis.tables import render_table
from repro.ml import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LinearSVC,
    RandomForestClassifier,
    cross_validate,
)

CLASSIFIERS = {
    "DT": lambda: DecisionTreeClassifier(max_depth=25, seed=0),
    "kNN": lambda: KNeighborsClassifier(n_neighbors=7),
    "SVM": lambda: LinearSVC(n_epochs=12, seed=0),
    "EGB": lambda: GradientBoostingClassifier(
        n_estimators=60, max_depth=4, seed=0
    ),
    "RF": lambda: RandomForestClassifier(
        n_estimators=70, max_depth=700, seed=0
    ),
}

_results: dict[str, tuple[float, float, float, float]] = {}


@pytest.mark.parametrize("name", list(CLASSIFIERS))
def test_table4_classifier_cv(benchmark, session, name):
    X, y = session.training_matrix
    n_splits = 10 if min((y == 0).sum(), (y == 1).sum()) >= 10 else 5

    def run_cv():
        return cross_validate(
            CLASSIFIERS[name], X, y, n_splits=n_splits, seed=0
        )

    result = benchmark.pedantic(run_cv, rounds=1, iterations=1)
    _results[name] = result.mean.as_row()
    accuracy, precision, recall, fpr = result.mean.as_row()
    # Every classifier must clearly beat chance on this task.
    assert accuracy > 0.8
    assert fpr < 0.3


def test_table4_render_and_shape(benchmark, session, results_dir):
    assert set(_results) == set(CLASSIFIERS), "run the CV benches first"
    rows = [
        (name, acc, prec, rec, fpr)
        for name, (acc, prec, rec, fpr) in _results.items()
    ]
    table = benchmark.pedantic(
        lambda: render_table(
            ["Method", "Accuracy", "Precision", "Recall", "False Positive"],
            rows,
            title="Table IV (reproduction) — 10-fold CV on the ground truth",
        ),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, "table4_classifiers.txt", table)

    precision = {name: row[1] for name, row in _results.items()}
    fpr = {name: row[3] for name, row in _results.items()}
    # RF and EGB lead in precision, as in the paper.
    ensemble_best = max(precision["RF"], precision["EGB"])
    assert ensemble_best >= max(precision["DT"], precision["kNN"]) - 0.02
    # RF's FPR is at or near the minimum.
    assert fpr["RF"] <= min(fpr.values()) + 0.02
