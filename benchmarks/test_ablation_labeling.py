"""Ablation — contribution of each ground-truth labeling stage.

DESIGN.md calls out the labeling pipeline's stage composition as a
design choice worth ablating: disable one stage at a time and measure
label recall against simulator ground truth.  Expected shape: the full
pipeline recalls the most true spam; dropping clustering (the campaign
amplifier) costs the most.
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.labeling.manual import ManualChecker
from repro.labeling.pipeline import GroundTruthLabeler


def _recall_precision(dataset, truth):
    true_spam = {
        i
        for i, tweet in enumerate(dataset.tweets)
        if truth.is_spam_tweet(tweet.tweet_id)
    }
    labeled = {i for i in range(dataset.n_tweets) if dataset.tweet_labels[i]}
    recall = len(true_spam & labeled) / max(len(true_spam), 1)
    precision = len(true_spam & labeled) / max(len(labeled), 1)
    return recall, precision


def test_ablation_labeling_stages(benchmark, session, results_dir):
    experiment = session.experiment
    truth = experiment.population.truth
    tweets = [c.tweet for c in session.ground_truth_run.captures]

    variants = {
        "full pipeline": {},
        "no suspended": {"enable_suspended": False},
        "no clustering": {"enable_clustering": False},
        "no rules": {"enable_rules": False},
        "no manual": {"enable_manual": False},
    }

    def run_all():
        results = {}
        for name, flags in variants.items():
            checker = ManualChecker(truth, error_rate=0.02, seed=7)
            labeler = GroundTruthLabeler(
                experiment.rest, checker, minhash_seed=7, **flags
            )
            dataset = labeler.label(list(tweets))
            recall, precision = _recall_precision(dataset, truth)
            results[name] = (recall, precision, dataset.n_spams)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (name, recall, precision, n_spams)
        for name, (recall, precision, n_spams) in results.items()
    ]
    table = render_table(
        ["Variant", "Recall", "Precision", "# labeled spams"],
        rows,
        title="Ablation — labeling pipeline stages",
    )
    save_result(results_dir, "ablation_labeling.txt", table)

    full_recall, full_precision, __ = results["full pipeline"]
    assert full_recall > 0.5
    # Dropping the rule stage costs recall.
    assert results["no rules"][0] <= full_recall
    # The manual pass is the precision mechanism: removing it must not
    # improve precision (it can only add unaudited false labels).
    assert results["no manual"][1] <= full_precision + 0.02
