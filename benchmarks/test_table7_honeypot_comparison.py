"""Table VII — pseudo-honeypot vs honeypot-based solutions.

The paper compares its advanced system's PGE (1.7336) against the PGEs
of published honeypot deployments (0.0034-0.12) and claims a >=19x
advantage.  The published systems cannot be re-deployed (neither could
the paper re-deploy them); we therefore (a) quote the literature rows
verbatim, (b) *additionally* deploy our simulated traditional-honeypot
baseline on the same platform, and (c) compare our measured advanced
pseudo-honeypot PGE against that in-world honeypot PGE — the
apples-to-apples version of the paper's claim.  Shape to reproduce:
the pseudo-honeypot's PGE exceeds the in-world honeypot's PGE by a
large factor.
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.baselines.honeypot import HoneypotProfile, TraditionalHoneypot
from repro.baselines.published import PAPER_ADVANCED_ROW, PUBLISHED_HONEYPOTS
from repro.core.pge import overall_pge


def test_table7_honeypot_comparison(benchmark, session, results_dir):
    # Measured advanced pseudo-honeypot PGE (from the Fig. 6 run).
    advanced_run = session.comparison_runs["advanced"]
    advanced_outcome = session.comparison_outcomes["advanced"]
    advanced_node_hours = sum(
        advanced_run.exposure.by_attribute.values()
    )
    advanced_pge = advanced_outcome.n_spammers / max(advanced_node_hours, 1)

    # Deploy the in-world traditional honeypot on the same platform.
    experiment = session.experiment
    truth = experiment.population.truth
    hours = session.scale.comparison_hours
    n_honeypots = max(advanced_node_hours // max(hours, 1), 10)

    def run_honeypot():
        honeypot = TraditionalHoneypot(
            experiment.engine,
            n_honeypots=int(n_honeypots),
            profile=HoneypotProfile.advanced(),
        )
        honeypot.deploy()
        honeypot.run_hours(hours)
        honeypot.shutdown()
        return honeypot

    honeypot = benchmark.pedantic(run_honeypot, rounds=1, iterations=1)
    trapped = {
        uid
        for uid in honeypot.unique_contacts()
        if truth.is_spammer(uid)
    }
    honeypot_pge = overall_pge(len(trapped), int(n_honeypots), hours)

    rows = [
        (
            row.name,
            str(row.year),
            f"{row.running_hours:.0f} h",
            row.n_honeypots,
            row.n_spammers if row.n_spammers is not None else "-",
            row.reported_pge,
        )
        for row in PUBLISHED_HONEYPOTS
    ]
    rows.append(
        (
            "Paper's advanced pseudo-honeypot (quoted)",
            "2018",
            "100 h",
            100,
            PAPER_ADVANCED_ROW.n_spammers,
            PAPER_ADVANCED_ROW.reported_pge,
        )
    )
    rows.append(
        (
            "OUR simulated traditional honeypot",
            "sim",
            f"{hours} h",
            int(n_honeypots),
            len(trapped),
            honeypot_pge,
        )
    )
    rows.append(
        (
            "OUR advanced pseudo-honeypot",
            "sim",
            f"{hours} h",
            int(n_honeypots),
            advanced_outcome.n_spammers,
            advanced_pge,
        )
    )
    ratio = advanced_pge / max(honeypot_pge, 1e-9)
    table = render_table(
        ["System", "Year", "Duration", "# nodes", "# spammers", "PGE"],
        rows,
        title=(
            "Table VII (reproduction) — PGE comparison; in-world "
            f"pseudo/honeypot ratio = {ratio:.1f}x"
        ),
    )
    save_result(results_dir, "table7_honeypot_comparison.txt", table)

    # Shape: the pseudo-honeypot clearly beats the same-world honeypot.
    assert advanced_pge > honeypot_pge
    assert ratio > 3.0
