"""Table III — ground-truth labeling breakdown per method.

Paper: over 161,633 tweets / 73,487 users, the stages label
suspended 6.72%/5.03%, clustering 2.55%/1.74%, rule-based 1.99%/1.17%,
human 0.68%/0.35% (of tweets/users), for 11.94% spam and 8.30%
spammers overall.  Shape to reproduce: every stage contributes,
suspended+clustering dominate, human is smallest, and overall spam /
spammer fractions land in the same order of magnitude.
"""

from conftest import save_result

from repro.analysis.tables import render_table
from repro.labeling.manual import ManualChecker
from repro.labeling.pipeline import GroundTruthLabeler


def test_table3_labeling_breakdown(benchmark, session, results_dir):
    run = session.ground_truth_run
    experiment = session.experiment
    tweets = [capture.tweet for capture in run.captures]

    def label_ground_truth():
        checker = ManualChecker(
            experiment.population.truth,
            error_rate=experiment.manual_error_rate,
            seed=experiment.config.seed,
        )
        labeler = GroundTruthLabeler(
            experiment.rest, checker, minhash_seed=experiment.config.seed
        )
        return labeler.label(list(tweets))

    dataset = benchmark.pedantic(label_ground_truth, rounds=1, iterations=1)

    rows = [
        (method, spams, pct_tweets, spammers, pct_users)
        for method, spams, pct_tweets, spammers, pct_users in (
            dataset.table_rows()
        )
    ]
    table = render_table(
        ["Method", "# spams", "% tweets", "# spammers", "% users"],
        rows,
        title=(
            f"Table III (reproduction) — {dataset.n_tweets} tweets, "
            f"{dataset.n_users} users; total spam "
            f"{100 * dataset.spam_fraction():.2f}%, spammers "
            f"{100 * dataset.spammer_fraction():.2f}%"
        ),
    )
    save_result(results_dir, "table3_labeling.txt", table)

    # Shape assertions.
    assert dataset.n_spams > 0
    assert 0.01 < dataset.spam_fraction() < 0.45
    assert 0.01 < dataset.spammer_fraction() < 0.45
    counts = dataset.method_counts
    assert counts["human"].spams <= max(
        counts["suspended"].spams, counts["clustering"].spams
    )
    contributing = sum(
        1 for method in counts if counts[method].spams > 0
    )
    assert contributing >= 3
